"""The simulated message-passing cluster: Dynamo/Riak over the event simulator.

This is the substrate that replaces the paper's modified-Riak testbed for the
latency experiment (E4) and for integration tests that need real replication
traffic (quorums, read repair, anti-entropy, partitions).  Everything travels
as :class:`~repro.network.message.Message` objects through a
:class:`~repro.network.transport.Transport`, so metadata size directly
influences request latency via the size-dependent latency model.

Topology and protocol
---------------------
* Each physical server runs a :class:`MessageServer` wrapping a
  :class:`~repro.kvstore.server.StorageNode`.
* Clients are :class:`SimulatedClient` nodes that send ``COORDINATE_GET`` /
  ``COORDINATE_PUT`` to the key's coordinator (resolved through the placement
  service), and receive ``GET_REPLY`` / ``PUT_REPLY``.
* The coordinator fans out to the key's replicas, waits for the configured
  R/W quorum, performs read repair on divergent read replies, and answers the
  client.
* A background :class:`~repro.kvstore.anti_entropy.AntiEntropyDaemon`
  periodically exchanges full key states between replica pairs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..clocks.interface import CausalityMechanism, Sibling
from ..cluster.membership import Membership
from ..cluster.preference_list import PlacementService, QuorumConfig
from ..cluster.ring import ConsistentHashRing
from ..core.exceptions import ConfigurationError
from ..network.latency import LatencyModel, SizeDependentLatency
from ..network.message import Message, MessageType
from ..network.partition import PartitionManager
from ..network.simulator import Simulation
from ..network.transport import Transport
from .anti_entropy import AntiEntropyDaemon
from .client import ClientSession, GetResult, PutResult
from .context import CausalContext
from .read_repair import ReadRepairStats, plan_read_repair
from .server import StorageNode
from .write_log import WriteLog


def default_value_size(value: Any) -> int:
    """Approximate wire size of an application value (bytes)."""
    if isinstance(value, bytes):
        return len(value)
    return len(repr(value).encode("utf-8"))


@dataclass
class RequestRecord:
    """One completed (or failed) client request, for latency analysis."""

    operation: str
    key: str
    client_id: str
    started_at: float
    finished_at: float
    ok: bool
    coordinator: str = ""
    sibling_count: int = 0
    context_bytes: int = 0

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in simulated milliseconds."""
        return self.finished_at - self.started_at


@dataclass
class _PendingCoordination:
    """Coordinator-side bookkeeping for one in-flight client request."""

    kind: str                       # "get" or "put"
    key: str
    client_address: str
    request_id: int
    needed: int
    replies: List = field(default_factory=list)
    replied_nodes: List[str] = field(default_factory=list)
    done: bool = False
    # put-only fields
    new_state: Any = None
    sibling: Optional[Sibling] = None


class MessageServer:
    """A storage server participating in the message-passing protocol."""

    def __init__(self,
                 node_id: str,
                 mechanism: CausalityMechanism,
                 cluster: "SimulatedCluster") -> None:
        self.node = StorageNode(node_id, mechanism)
        self.node_id = node_id
        self.mechanism = mechanism
        self.cluster = cluster
        self._pending: Dict[int, _PendingCoordination] = {}
        self._request_ids = itertools.count(1)
        self.read_repair_stats = ReadRepairStats()

    # ------------------------------------------------------------------ #
    # Message dispatch
    # ------------------------------------------------------------------ #
    def handle_message(self, message: Message) -> None:
        """Transport entry point."""
        handlers = {
            MessageType.COORDINATE_GET: self._on_coordinate_get,
            MessageType.COORDINATE_PUT: self._on_coordinate_put,
            MessageType.REPLICA_GET: self._on_replica_get,
            MessageType.REPLICA_GET_REPLY: self._on_replica_get_reply,
            MessageType.REPLICA_PUT: self._on_replica_put,
            MessageType.REPLICA_PUT_ACK: self._on_replica_put_ack,
            MessageType.READ_REPAIR: self._on_read_repair,
            MessageType.SYNC_REQUEST: self._on_sync_request,
            MessageType.SYNC_REPLY: self._on_sync_reply,
            MessageType.PING: self._on_ping,
        }
        handler = handlers.get(message.msg_type)
        if handler is None:
            return
        handler(message)

    # ------------------------------------------------------------------ #
    # Coordinating a GET
    # ------------------------------------------------------------------ #
    def _on_coordinate_get(self, message: Message) -> None:
        key = message.payload["key"]
        config = self.cluster.quorum
        replicas = self.cluster.placement.active_replicas(key)
        request_id = next(self._request_ids)
        pending = _PendingCoordination(
            kind="get",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.r, max(len(replicas), 1)),
        )
        self._pending[request_id] = pending

        # The coordinator replies for itself immediately (no network hop).
        pending.replies.append((self.node_id, self.node.state_of(key)))
        pending.replied_nodes.append(self.node_id)

        for replica_id in replicas:
            if replica_id == self.node_id:
                continue
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_GET,
                payload={"key": key, "coordination_id": request_id},
                size_bytes=self.cluster.request_overhead_bytes,
                request_id=request_id,
            ))
        self._maybe_finish_get(request_id)

    def _on_replica_get(self, message: Message) -> None:
        key = message.payload["key"]
        state = self.node.state_of(key)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.REPLICA_GET_REPLY,
            payload={
                "key": key,
                "state": state,
                "coordination_id": message.payload["coordination_id"],
            },
            size_bytes=self._state_size(key, state),
            request_id=message.request_id,
        ))

    def _on_replica_get_reply(self, message: Message) -> None:
        coordination_id = message.payload["coordination_id"]
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done or pending.kind != "get":
            return
        pending.replies.append((message.sender, message.payload["state"]))
        pending.replied_nodes.append(message.sender)
        self._maybe_finish_get(coordination_id)

    def _maybe_finish_get(self, coordination_id: int) -> None:
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done:
            return
        if len(pending.replies) < pending.needed:
            return
        pending.done = True

        plan = plan_read_repair(self.mechanism, pending.replies)
        self.read_repair_stats.record(plan)
        merged_state = plan.merged_state
        # The coordinator keeps the merged state (it is one of the replicas).
        self.node.local_merge(pending.key, merged_state)
        read = self.mechanism.read(self.node.state_of(pending.key))

        # Repair the stale replicas in the background.
        for replica_id in plan.stale_replicas:
            if replica_id == self.node_id:
                continue
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=replica_id,
                msg_type=MessageType.READ_REPAIR,
                payload={"key": pending.key, "state": merged_state},
                size_bytes=self._state_size(pending.key, merged_state),
            ))

        context_bytes = self.mechanism.context_bytes(read.context)
        values_bytes = sum(default_value_size(s.value) for s in read.siblings)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.GET_REPLY,
            payload={
                "key": pending.key,
                "siblings": list(read.siblings),
                "mechanism_context": read.context,
                "coordinator": self.node_id,
                "context_bytes": context_bytes,
            },
            size_bytes=values_bytes + context_bytes + self.cluster.request_overhead_bytes,
            request_id=pending.request_id,
        ))
        self._pending.pop(coordination_id, None)

    # ------------------------------------------------------------------ #
    # Coordinating a PUT
    # ------------------------------------------------------------------ #
    def _on_coordinate_put(self, message: Message) -> None:
        key = message.payload["key"]
        sibling: Sibling = message.payload["sibling"]
        context: Optional[CausalContext] = message.payload.get("context")
        client_id = message.payload["client_id"]
        config = self.cluster.quorum
        replicas = self.cluster.placement.active_replicas(key)

        new_state = self.node.local_write(key, context, sibling, client_id)
        self.cluster.write_log.append(
            key, sibling, self.node_id, client_id, self.cluster.simulation.now
        )

        request_id = next(self._request_ids)
        pending = _PendingCoordination(
            kind="put",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.w, max(len(replicas), 1)),
            new_state=new_state,
            sibling=sibling,
        )
        self._pending[request_id] = pending
        pending.replies.append((self.node_id, True))
        pending.replied_nodes.append(self.node_id)

        for replica_id in replicas:
            if replica_id == self.node_id:
                continue
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_PUT,
                payload={"key": key, "state": new_state, "coordination_id": request_id},
                size_bytes=self._state_size(key, new_state),
                request_id=request_id,
            ))
        self._maybe_finish_put(request_id)

    def _on_replica_put(self, message: Message) -> None:
        key = message.payload["key"]
        self.node.local_merge(key, message.payload["state"])
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.REPLICA_PUT_ACK,
            payload={"key": key, "coordination_id": message.payload["coordination_id"]},
            size_bytes=self.cluster.request_overhead_bytes,
            request_id=message.request_id,
        ))

    def _on_replica_put_ack(self, message: Message) -> None:
        coordination_id = message.payload["coordination_id"]
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done or pending.kind != "put":
            return
        pending.replies.append((message.sender, True))
        pending.replied_nodes.append(message.sender)
        self._maybe_finish_put(coordination_id)

    def _maybe_finish_put(self, coordination_id: int) -> None:
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done:
            return
        if len(pending.replies) < pending.needed:
            return
        pending.done = True
        read = self.mechanism.read(self.node.state_of(pending.key))
        context_bytes = self.mechanism.context_bytes(read.context)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.PUT_REPLY,
            payload={
                "key": pending.key,
                "coordinator": self.node_id,
                "mechanism_context": read.context,
                "siblings": list(read.siblings),
                "context_bytes": context_bytes,
                "sibling": pending.sibling,
            },
            size_bytes=context_bytes + self.cluster.request_overhead_bytes,
            request_id=pending.request_id,
        ))
        self._pending.pop(coordination_id, None)

    # ------------------------------------------------------------------ #
    # Read repair / anti-entropy
    # ------------------------------------------------------------------ #
    def _on_read_repair(self, message: Message) -> None:
        self.node.local_merge(message.payload["key"], message.payload["state"])

    def _on_sync_request(self, message: Message) -> None:
        states = message.payload["states"]
        reply_states = {}
        for key, state in states.items():
            self.node.local_merge(key, state)
        for key in self.node.storage.keys():
            reply_states[key] = self.node.state_of(key)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.SYNC_REPLY,
            payload={"states": reply_states},
            size_bytes=sum(self._state_size(k, s) for k, s in reply_states.items()),
            request_id=message.request_id,
        ))

    def _on_sync_reply(self, message: Message) -> None:
        for key, state in message.payload["states"].items():
            self.node.local_merge(key, state)

    def _on_ping(self, message: Message) -> None:
        self.cluster.transport.send(message.reply(MessageType.PONG))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def start_sync_with(self, peer_id: str) -> None:
        """Begin an anti-entropy exchange with ``peer_id`` (push-pull)."""
        states = {key: self.node.state_of(key) for key in self.node.storage.keys()}
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=peer_id,
            msg_type=MessageType.SYNC_REQUEST,
            payload={"states": states},
            size_bytes=sum(self._state_size(k, s) for k, s in states.items()),
        ))

    def _state_size(self, key: str, state: Any) -> int:
        metadata = self.mechanism.metadata_bytes(state)
        values = sum(default_value_size(s.value) for s in self.mechanism.siblings(state))
        return metadata + values + self.cluster.request_overhead_bytes


class SimulatedClient:
    """A client node of the simulated cluster.

    The client keeps a :class:`~repro.kvstore.client.ClientSession` for causal
    bookkeeping and records a :class:`RequestRecord` for every completed
    request.  Requests are asynchronous: callers pass a callback that receives
    the :class:`GetResult` / :class:`PutResult` when the reply arrives.
    """

    def __init__(self, client_id: str, cluster: "SimulatedCluster") -> None:
        self.client_id = client_id
        self.address = f"client:{client_id}"
        self.cluster = cluster
        self.session = ClientSession(client_id)
        self.records: List[RequestRecord] = []
        self._callbacks: Dict[int, Callable] = {}
        self._started: Dict[int, float] = {}
        self._operations: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def handle_message(self, message: Message) -> None:
        """Transport entry point (replies from coordinators)."""
        if message.msg_type is MessageType.GET_REPLY:
            self._on_get_reply(message)
        elif message.msg_type is MessageType.PUT_REPLY:
            self._on_put_reply(message)

    # ------------------------------------------------------------------ #
    # Issuing requests
    # ------------------------------------------------------------------ #
    def get(self, key: str, callback: Optional[Callable[[GetResult], None]] = None) -> None:
        """Issue a GET for ``key``; ``callback`` fires when the reply arrives."""
        coordinator = self.cluster.placement.coordinator_for(key)
        message = Message(
            sender=self.address,
            receiver=coordinator,
            msg_type=MessageType.COORDINATE_GET,
            payload={"key": key},
            size_bytes=self.cluster.request_overhead_bytes,
        )
        self._register(message, "get", key, callback)
        self.cluster.transport.send(message)

    def put(self,
            key: str,
            value: Any,
            callback: Optional[Callable[[PutResult], None]] = None,
            use_context: bool = True) -> None:
        """Issue a PUT for ``key``; ``callback`` fires when the reply arrives."""
        coordinator = self.cluster.placement.coordinator_for(key)
        context = self.session.last_context(key) if use_context else None
        sibling = self.session.prepare_write(key, value, context)
        context_bytes = (
            self.cluster.mechanism.context_bytes(context.mechanism_context)
            if context is not None else 0
        )
        message = Message(
            sender=self.address,
            receiver=coordinator,
            msg_type=MessageType.COORDINATE_PUT,
            payload={
                "key": key,
                "sibling": sibling,
                "context": context,
                "client_id": self.client_id,
            },
            size_bytes=default_value_size(value) + context_bytes
            + self.cluster.request_overhead_bytes,
        )
        self._register(message, "put", key, callback)
        self.cluster.transport.send(message)

    def _register(self, message: Message, operation: str, key: str,
                  callback: Optional[Callable]) -> None:
        self._callbacks[message.msg_id] = callback
        self._started[message.msg_id] = self.cluster.simulation.now
        self._operations[message.msg_id] = {"operation": operation, "key": key}

    # ------------------------------------------------------------------ #
    # Handling replies
    # ------------------------------------------------------------------ #
    def _on_get_reply(self, message: Message) -> None:
        request_id = message.request_id
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.cluster.simulation.now)
        key = message.payload["key"]
        siblings = message.payload["siblings"]

        read = _SyntheticRead(siblings, message.payload["mechanism_context"])
        context = self.session.absorb_read(key, read, self.cluster.mechanism.name)
        result = GetResult(
            key=key,
            values=[s.value for s in siblings],
            siblings=list(siblings),
            context=context,
        )
        self.records.append(RequestRecord(
            operation="get",
            key=key,
            client_id=self.client_id,
            started_at=started,
            finished_at=self.cluster.simulation.now,
            ok=True,
            coordinator=message.payload["coordinator"],
            sibling_count=len(siblings),
            context_bytes=message.payload.get("context_bytes", 0),
        ))
        if callback is not None:
            callback(result)

    def _on_put_reply(self, message: Message) -> None:
        request_id = message.request_id
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.cluster.simulation.now)
        key = message.payload["key"]

        # The put reply carries the post-write context (Riak's "return body"
        # mode); absorbing it keeps the session able to chain further writes.
        read = _SyntheticRead(message.payload["siblings"], message.payload["mechanism_context"])
        context = self.session.absorb_read(key, read, self.cluster.mechanism.name)
        result = PutResult(
            key=key,
            context=context,
            coordinator=message.payload["coordinator"],
            sibling=message.payload["sibling"],
        )
        self.records.append(RequestRecord(
            operation="put",
            key=key,
            client_id=self.client_id,
            started_at=started,
            finished_at=self.cluster.simulation.now,
            ok=True,
            coordinator=message.payload["coordinator"],
            sibling_count=len(message.payload["siblings"]),
            context_bytes=message.payload.get("context_bytes", 0),
        ))
        if callback is not None:
            callback(result)


class _SyntheticRead:
    """Adapter giving :meth:`ClientSession.absorb_read` the shape it expects."""

    def __init__(self, siblings: Sequence[Sibling], context: Any) -> None:
        self.siblings = list(siblings)
        self.context = context


class SimulatedCluster:
    """A complete simulated deployment: servers, clients, ring, transport.

    Parameters
    ----------
    mechanism:
        Causality mechanism shared by all servers in this run.
    server_ids:
        Physical storage nodes.
    quorum:
        N / R / W configuration.
    latency:
        Latency model; defaults to a size-dependent model so metadata size
        shows up in request latency (experiment E4).
    seed:
        Simulation seed (drives latency sampling and message loss).
    loss_probability / duplicate_probability:
        Transport unreliability knobs.
    anti_entropy_interval_ms:
        Period of the background replica synchronisation (None disables it).
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 server_ids: Sequence[str] = ("A", "B", "C"),
                 quorum: Optional[QuorumConfig] = None,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 loss_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 anti_entropy_interval_ms: Optional[float] = 100.0,
                 virtual_nodes: int = 32,
                 request_overhead_bytes: int = 64) -> None:
        if not server_ids:
            raise ConfigurationError("at least one server id is required")
        self.mechanism = mechanism
        self.quorum = quorum or QuorumConfig(n=min(3, len(server_ids)),
                                             r=min(2, len(server_ids)),
                                             w=min(2, len(server_ids)))
        self.simulation = Simulation(seed=seed)
        self.partitions = PartitionManager()
        self.transport = Transport(
            self.simulation,
            latency=latency or SizeDependentLatency(),
            loss_probability=loss_probability,
            duplicate_probability=duplicate_probability,
            partitions=self.partitions,
        )
        self.ring = ConsistentHashRing(server_ids, virtual_nodes=virtual_nodes)
        self.membership = Membership(server_ids)
        self.placement = PlacementService(self.ring, self.membership, self.quorum)
        self.write_log = WriteLog()
        self.request_overhead_bytes = request_overhead_bytes

        self.servers: Dict[str, MessageServer] = {}
        for server_id in server_ids:
            server = MessageServer(server_id, mechanism, self)
            self.servers[server_id] = server
            self.transport.register(server_id, server.handle_message)

        self.clients: Dict[str, SimulatedClient] = {}
        self.anti_entropy: Optional[AntiEntropyDaemon] = None
        if anti_entropy_interval_ms is not None and len(server_ids) > 1:
            self.anti_entropy = AntiEntropyDaemon(
                self.simulation,
                self._trigger_sync,
                list(server_ids),
                interval_ms=anti_entropy_interval_ms,
            )

    # ------------------------------------------------------------------ #
    # Topology management
    # ------------------------------------------------------------------ #
    def client(self, client_id: str) -> SimulatedClient:
        """Create (or return) the client node with the given id."""
        if client_id in self.clients:
            return self.clients[client_id]
        client = SimulatedClient(client_id, self)
        self.clients[client_id] = client
        self.transport.register(client.address, client.handle_message)
        return client

    def _trigger_sync(self, source_id: str, target_id: str) -> None:
        self.servers[source_id].start_sync_with(target_id)

    def fail_node(self, server_id: str) -> None:
        """Crash a server: it stops receiving messages and is marked down."""
        self.membership.mark_down(server_id)
        self.transport.unregister(server_id)

    def recover_node(self, server_id: str) -> None:
        """Bring a crashed server back (its pre-crash state is retained)."""
        self.membership.mark_up(server_id)
        if not self.transport.is_registered(server_id):
            self.transport.register(server_id, self.servers[server_id].handle_message)

    # ------------------------------------------------------------------ #
    # Execution helpers
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Advance the simulation (delegates to :meth:`Simulation.run`)."""
        self.simulation.run(until=until, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> None:
        """Stop background daemons and run every outstanding event."""
        if self.anti_entropy is not None:
            self.anti_entropy.stop()
        self.simulation.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def all_request_records(self) -> List[RequestRecord]:
        """Every request completed by every client, in completion order."""
        records: List[RequestRecord] = []
        for client in self.clients.values():
            records.extend(client.records)
        records.sort(key=lambda record: record.finished_at)
        return records

    def metadata_entries(self) -> int:
        """Total causality-metadata entries stored across the cluster."""
        return sum(server.node.metadata_entries() for server in self.servers.values())

    def metadata_bytes(self) -> int:
        """Total causality-metadata bytes stored across the cluster."""
        return sum(server.node.metadata_bytes() for server in self.servers.values())

    def sibling_counts(self, key: str) -> Dict[str, int]:
        """Live sibling counts of ``key`` on every server."""
        return {
            server_id: len(server.node.siblings_of(key))
            for server_id, server in self.servers.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SimulatedCluster(mechanism={self.mechanism.name!r}, "
            f"servers={sorted(self.servers)}, clients={len(self.clients)})"
        )
