"""The simulated message-passing cluster: Dynamo/Riak over the event simulator.

This is the substrate that replaces the paper's modified-Riak testbed for the
latency experiment (E4) and for integration tests that need real replication
traffic (quorums, read repair, anti-entropy, partitions).  Everything travels
as :class:`~repro.network.message.Message` objects through a
:class:`~repro.network.transport.Transport`, so metadata size directly
influences request latency via the size-dependent latency model.

Topology and protocol
---------------------
The protocol itself lives in :mod:`repro.kvstore.protocol` as
transport-agnostic state machines; this module is the **deterministic
simulator backend** that hosts them (the asyncio socket backend in
:mod:`repro.kvstore.asyncio_cluster` hosts the same machines over real
connections — see ``ARCHITECTURE.md`` for the layering):

* Each physical server runs a :class:`MessageServer` hosting a
  :class:`~repro.kvstore.protocol.node.ProtocolNode` (coordination, replica
  handlers, Merkle anti-entropy, hint replay) over a
  :class:`~repro.kvstore.server.StorageNode`.
* Clients are :class:`SimulatedClient` nodes hosting a
  :class:`~repro.kvstore.protocol.client.ClientProtocol`; they send
  ``COORDINATE_GET`` / ``COORDINATE_PUT`` to the key's coordinator (resolved
  through the placement service) and receive ``GET_REPLY`` / ``PUT_REPLY``.
* The coordinator fans out to the key's replicas, waits for the configured
  R/W quorum, performs read repair on divergent read replies, and answers the
  client.
* A background :class:`~repro.kvstore.anti_entropy.AntiEntropyDaemon`
  periodically synchronises replica pairs, by default with the **Merkle-delta
  protocol** (below); the original full-state exchange remains available via
  ``anti_entropy_strategy="full"``.

Every machine consumes decoded messages and timer events and emits effects;
an :class:`~repro.kvstore.protocol.effects.EffectRunner` per hosted node
executes them against the simulated transport in emission order, which keeps
runs bit-for-bit reproducible for a fixed seed.

Merkle-delta anti-entropy (per vnode range)
-------------------------------------------
Every server divides its key space into the cluster-wide fixed partitions of
a :class:`~repro.cluster.ring.PartitionMap` and maintains one hash tree per
partition (vnode range).  A sync round between a source and a target then
compares ranges, not the whole keyspace:

1. the source sends the root digest of every non-empty local range in one
   ``MERKLE_PARTITION_DIGESTS`` message;
2. the target compares range by range (absent ranges hash to the well-known
   empty root) and names the differing ranges in a
   ``MERKLE_PARTITION_DIFF`` reply — on a synced pair the exchange ends
   here, two messages total;
3. each differing range's tree is walked level by level
   (``MERKLE_SYNC_REQUEST`` / ``MERKLE_SYNC_RESPONSE``), the source shipping
   child digests of differing paths until the leaf-bucket level, where the
   target's response also carries the per-key fingerprints of the differing
   buckets — differing ranges descend **concurrently**, as parallel
   sessions whose messages interleave in flight;
4. the source computes the exact divergent key set from the fingerprints and
   ships only those keys' states, batched ``sync_batch_size`` keys per
   ``MERKLE_KEY_STATES`` message to amortise per-message latency; the target
   merges them and replies in kind with its own states for the same keys.

Bytes on the wire are therefore proportional to the *divergence*, not the
store size, and digest comparisons are confined to the ranges that actually
differ.  All protocol messages pay the normal transport latency/size costs,
and every merge is idempotent, so lost or duplicated messages merely delay
convergence until a later round.  (In ``merkle_maintenance="rebuild"`` mode
no per-range trees exist; the legacy single-tree protocol starts at the
whole-keyspace root instead.)

The trees themselves are **incrementally maintained**, Riak-style: each
server carries a :class:`~repro.kvstore.merkle_index.VnodeIndexSet` — one
:class:`~repro.kvstore.merkle_index.MerkleIndex` per vnode range, each
subscribed to its range's slice of the storage mutation stream — so every
write path (client puts, replica merges, read repair, Merkle-delta
transfers, hint replay, rebalancing handoff) re-fingerprints only the
mutated key and dirties its leaf bucket in the one affected range tree;
exchange snapshots just flush the dirty buckets and copy digests out.  Tree
work per exchange is therefore O(divergent buckets), not O(keys) — set
``merkle_maintenance="rebuild"`` to restore the old rebuild-per-exchange
behaviour for cost comparisons.  Rebalancing handoff (``KEY_HANDOFF``) ships
each key's maintained fingerprint alongside its state, so moving a vnode's
keys re-hashes ~nothing on either side: the receiver adopts the digests
(counted in ``fingerprints_imported``) instead of re-fingerprinting.
Read-repair pushes are coalesced the same way sync transfers are: repairs
for one stale replica ride a single batched ``READ_REPAIR`` message per
coalescing window.

Dynamic membership and hinted handoff
-------------------------------------
The cluster is elastic: :meth:`SimulatedCluster.join_node` adds a server at
runtime (the ring rebalances and existing replicas push the keys the newcomer
now owns via ``KEY_HANDOFF``), :meth:`SimulatedCluster.decommission_node`
removes one gracefully (it first pushes each of its keys to the key's
remaining replica homes), and :meth:`SimulatedCluster.fail_node` /
:meth:`SimulatedCluster.recover_node` model crashes — optionally with wiped
storage on recovery.  :meth:`SimulatedCluster.shutdown_node` models a *clean*
shutdown: storage flushes and marks its Merkle index clean, so a later
recovery adopts the maintained digests instead of rebuilding them (counted in
``rebuilds_skipped``).

When a write coordinator cannot reach one of the key's primary replicas
(crashed, or cut off by a partition), the write is held as a *hint* — target
id plus the post-write state — persisted in the holder's storage layer, so a
process restart of the holder does not lose it (a wiped disk does).  The
background :class:`~repro.kvstore.anti_entropy.HintedHandoffDaemon` replays
hints (``HINT_REPLAY`` / ``HINT_ACK``) once the target is reachable again; a
membership listener also nudges replay immediately on recovery.  Replay
targeting consults the per-replica latency EWMAs: a persistently slow peer is
replayed to once and then backed off for a multiple of its observed round
trip (``hint_backoff_multiplier``) instead of being hammered every tick.

Request modes: failure detector vs deadlines
--------------------------------------------
The cluster runs in one of two request modes (``request_mode``):

* ``"membership"`` (default) — the PR-1 behaviour: the coordinator consults
  the membership view's failure detector (``active_replicas`` /
  ``can_reach``) to decide whom to contact and for whom to hold hints.
  Hints live on the coordinator.
* ``"async"`` — Dynamo-style timeout-driven coordination: the coordinator
  fans out to the key's N *primary* replicas regardless of the membership
  view, arms a per-replica deadline, and collects R/W acks.  When a replica's
  deadline fires and the quorum is **sloppy** (``QuorumConfig.sloppy``), the
  preference list is extended past the N primaries to the next node on the
  ring, which accepts the write together with a hint naming the intended
  primary; hint replay later returns the data to the primary.  With a
  **strict** quorum (or an exhausted ring) the coordinator holds the hint
  itself and the request fails with ``ERROR_REPLY`` once the quorum is
  infeasible or the overall request deadline fires.  Clients in async mode
  arm their own deadline and fail over to the next candidate coordinator on
  the (extended) preference list before reporting the request as failed.

Per-replica deadlines are a fixed ``replica_timeout_ms`` by default;
``deadline_mode="adaptive"`` instead arms an EWMA of each replica's observed
ack latency (scaled for headroom, clamped to a floor/ceiling), so failover
off a slow replica happens in a few of its usual round trips instead of a
worst-case constant.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..clocks.interface import CausalityMechanism
from ..cluster.membership import Membership
from ..cluster.preference_list import PlacementService, QuorumConfig
from ..cluster.topology import Topology
from ..cluster.ring import (
    DEFAULT_PARTITION_COUNT,
    ConsistentHashRing,
    PartitionMap,
    rebalance_plan,
)
from ..core.exceptions import ConfigurationError
from ..network.latency import LatencyModel, SizeDependentLatency
from ..network.message import Message
from ..network.partition import PartitionManager
from ..network.simulator import Simulation
from ..network.transport import Transport
from ..obs.cluster_metrics import build_cluster_registry
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NO_TRACER
from .anti_entropy import AntiEntropyDaemon, HintedHandoffDaemon
from .client import GetResult, PutResult
from .merkle import MERKLE_MAINTENANCE_MODES, key_fingerprint
from .merkle_index import VnodeIndexSet
from .protocol import (
    ADAPTIVE_DEADLINE_MULTIPLIER,
    DEADLINE_EWMA_ALPHA,
    DEADLINE_MODES,
    DIGEST_BYTES,
    REQUEST_MODES,
    SYNC_MESSAGE_TYPES,
    ClientProtocol,
    EffectRunner,
    MerkleSyncStats,
    ProtocolNode,
    RequestRecord,
    chunked as _chunked,
    default_value_size,
)
from .protocol.anti_entropy import AntiEntropySession as _MerkleSession
from .protocol.coordinator import CoordinatorSession as _PendingCoordination
from .server import StorageNode
from .write_log import WriteLog

__all__ = [
    "ADAPTIVE_DEADLINE_MULTIPLIER",
    "ANTI_ENTROPY_STRATEGIES",
    "DEADLINE_EWMA_ALPHA",
    "DEADLINE_MODES",
    "DIGEST_BYTES",
    "MerkleSyncStats",
    "MessageServer",
    "REQUEST_MODES",
    "RequestRecord",
    "SYNC_MESSAGE_TYPES",
    "SimulatedClient",
    "SimulatedCluster",
    "default_value_size",
]

ANTI_ENTROPY_STRATEGIES = ("merkle", "full")


class _ClusterEnv:
    """Protocol-env view over a live :class:`SimulatedCluster`.

    The state machines read their configuration through the env contract
    (see :mod:`repro.kvstore.protocol.env`); proxying the live cluster
    attributes — instead of copying them once — keeps tests that tweak
    cluster knobs at runtime (timeouts, batch sizes, quorum config) working
    exactly as before the extraction.
    """

    def __init__(self, cluster: "SimulatedCluster") -> None:
        self._cluster = cluster

    @property
    def mechanism(self):
        return self._cluster.mechanism

    @property
    def quorum(self):
        return self._cluster.quorum

    @property
    def placement(self):
        return self._cluster.placement

    @property
    def write_log(self):
        return self._cluster.write_log

    @property
    def merkle_stats(self):
        return self._cluster.merkle_stats

    @property
    def request_mode(self):
        return self._cluster.request_mode

    @property
    def replica_timeout_ms(self):
        return self._cluster.replica_timeout_ms

    @property
    def request_timeout_ms(self):
        return self._cluster.request_timeout_ms

    @property
    def client_timeout_ms(self):
        return self._cluster.client_timeout_ms

    @property
    def sync_batch_size(self):
        return self._cluster.sync_batch_size

    @property
    def merkle_fanout(self):
        return self._cluster.merkle_fanout

    @property
    def merkle_depth(self):
        return self._cluster.merkle_depth

    @property
    def read_repair_batch_ms(self):
        return self._cluster.read_repair_batch_ms

    @property
    def deadline_mode(self):
        return self._cluster.deadline_mode

    @property
    def deadline_floor_ms(self):
        return self._cluster.deadline_floor_ms

    @property
    def deadline_ceiling_ms(self):
        return self._cluster.deadline_ceiling_ms

    @property
    def request_overhead_bytes(self):
        return self._cluster.request_overhead_bytes

    @property
    def hinted_handoff_enabled(self):
        return self._cluster.hinted_handoff_enabled

    @property
    def hint_backoff_multiplier(self):
        return self._cluster.hint_backoff_multiplier

    def can_reach(self, source_id: str, target_id: str) -> bool:
        return self._cluster.can_reach(source_id, target_id)

    def is_registered(self, node_id: str) -> bool:
        return self._cluster.transport.is_registered(node_id)

    @property
    def tracer(self):
        return self._cluster.tracer


class MessageServer:
    """A storage server of the simulated cluster.

    Thin backend shell: it owns the durable :class:`StorageNode` (plus its
    incrementally-maintained Merkle index), hosts the transport-agnostic
    :class:`~repro.kvstore.protocol.node.ProtocolNode` that implements the
    entire message protocol, and runs the effects the machines emit against
    the simulated transport.
    """

    def __init__(self,
                 node_id: str,
                 mechanism: CausalityMechanism,
                 cluster: "SimulatedCluster") -> None:
        self.node_id = node_id
        self.mechanism = mechanism
        self.cluster = cluster
        node = StorageNode(node_id, mechanism,
                           partition_map=cluster.partition_map)
        if cluster.merkle_maintenance == "incremental":
            # The write-maintained hash trees, one per vnode range: every
            # storage mutation (client writes, merges, read repair, hint
            # replay, handoff) updates the mutated key's range tree in place,
            # so exchanges snapshot per-range digests instead of rebuilding.
            node.attach_merkle_index(VnodeIndexSet(
                mechanism,
                partition_map=cluster.partition_map,
                fanout=cluster.merkle_fanout,
                depth=cluster.merkle_depth,
                counters=node.stats,
            ))
        self.protocol = ProtocolNode(node_id, mechanism, cluster.protocol_env,
                                     store=node)
        self.runner = EffectRunner(cluster.transport, self.protocol.on_timer)

    @property
    def node(self) -> StorageNode:
        """The server's storage layer (durable state, stats, hints, index)."""
        return self.protocol.store

    # ------------------------------------------------------------------ #
    # Transport entry point and daemon triggers
    # ------------------------------------------------------------------ #
    def handle_message(self, message: Message) -> None:
        """Transport entry point."""
        self.runner.run(
            self.protocol.on_message(message, self.cluster.simulation.now))

    def replay_hints(self) -> int:
        """One hint-replay tick; returns the number of batches sent."""
        effects, batches = self.protocol.replay_hints(self.cluster.simulation.now)
        self.runner.run(effects)
        return batches

    def start_sync_with(self, peer_id: str) -> None:
        """Begin a full-state anti-entropy exchange with ``peer_id``."""
        self.runner.run(
            self.protocol.start_sync_with(peer_id, self.cluster.simulation.now))

    def start_merkle_sync_with(self, peer_id: str) -> None:
        """Begin a Merkle-delta exchange with ``peer_id``."""
        self.runner.run(
            self.protocol.start_merkle_sync_with(peer_id,
                                                 self.cluster.simulation.now))

    def send_key_handoff(self, target_id: str, keys: Sequence[str]) -> None:
        """Push the states of ``keys`` to a node that became a replica home."""
        self.runner.run(
            self.protocol.send_key_handoff(target_id, keys,
                                           self.cluster.simulation.now))

    def on_recover(self, wipe: bool,
                   wipe_partitions: Optional[Sequence[int]] = None) -> None:
        """Recover from a crash (see :meth:`ProtocolNode.on_recover`).

        Deliberately does *not* disarm timers the crashed process had armed:
        a real crashed coordinator's deadlines are process memory too, but
        the original simulator let them fire harmlessly against the cleared
        state, and the equivalence suite pins that behaviour.
        """
        self.protocol.on_recover(wipe, wipe_partitions=wipe_partitions)

    # ------------------------------------------------------------------ #
    # Introspection shims (stable names for tests and diagnostics)
    # ------------------------------------------------------------------ #
    @property
    def read_repair_stats(self):
        return self.protocol.coordinator.read_repair_stats

    @property
    def _pending(self):
        return self.protocol.coordinator.sessions

    @property
    def _repair_queue(self):
        return self.protocol.coordinator.repair_queue

    @property
    def _ack_latency_ewma(self) -> Dict[str, float]:
        return self.protocol.latency.ewma

    def _replica_deadline_ms(self, replica_id: str) -> float:
        return self.protocol.coordinator.replica_deadline_ms(replica_id)

    @property
    def _merkle_sessions(self):
        return self.protocol.anti_entropy.sessions

    @property
    def _merkle_peer_trees(self):
        return self.protocol.anti_entropy.peer_trees


class SimulatedClient:
    """A client node of the simulated cluster.

    Thin backend shell over :class:`~repro.kvstore.protocol.client.ClientProtocol`:
    the machine keeps the causal session and the request records; this class
    feeds it replies and executes its effects against the simulated transport.
    Requests are asynchronous: callers pass a callback that receives the
    :class:`GetResult` / :class:`PutResult` when the reply arrives.
    """

    def __init__(self, client_id: str, cluster: "SimulatedCluster") -> None:
        self.client_id = client_id
        self.cluster = cluster
        self.protocol = ClientProtocol(client_id, cluster.protocol_env)
        self.runner = EffectRunner(cluster.transport, self.protocol.on_timer)

    @property
    def address(self) -> str:
        return self.protocol.address

    @property
    def session(self):
        return self.protocol.session

    @property
    def records(self) -> List[RequestRecord]:
        return self.protocol.records

    def handle_message(self, message: Message) -> None:
        """Transport entry point (replies from coordinators)."""
        self.runner.run(
            self.protocol.on_message(message, self.cluster.simulation.now))

    def get(self, key: str,
            callback: Optional[Callable[[GetResult], None]] = None) -> None:
        """Issue a GET for ``key``; ``callback`` fires when the reply arrives."""
        self.runner.run(
            self.protocol.get(key, callback, self.cluster.simulation.now))

    def put(self,
            key: str,
            value: Any,
            callback: Optional[Callable[[PutResult], None]] = None,
            use_context: bool = True) -> None:
        """Issue a PUT for ``key``; ``callback`` fires when the reply arrives."""
        self.runner.run(
            self.protocol.put(key, value, callback, self.cluster.simulation.now,
                              use_context=use_context))


class SimulatedCluster:
    """A complete simulated deployment: servers, clients, ring, transport.

    Parameters
    ----------
    mechanism:
        Causality mechanism shared by all servers in this run.
    server_ids:
        Physical storage nodes.
    quorum:
        N / R / W configuration.
    latency:
        Latency model; defaults to a size-dependent model so metadata size
        shows up in request latency (experiment E4).
    seed:
        Simulation seed (drives latency sampling and message loss).
    loss_probability / duplicate_probability:
        Transport unreliability knobs.
    anti_entropy_interval_ms:
        Period of the background replica synchronisation (None disables it).
    anti_entropy_strategy:
        ``"merkle"`` (default) for the Merkle-delta exchange, ``"full"`` for
        the original all-keys state exchange.
    hint_replay_interval_ms:
        Period of the hinted-handoff replay daemon (None disables hinted
        handoff entirely — no hints are stored).
    hint_backoff_multiplier:
        Backoff for hint replay toward a persistently slow peer (one whose
        latency EWMA clamps its adaptive deadline at the ceiling): after one
        replay, the next attempt waits ``ewma × this`` instead of the daemon
        cadence.  Deferred ticks are counted in ``hint_replays_deferred``.
    request_mode:
        ``"membership"`` (default) — coordinators consult the membership
        view's failure detector; ``"async"`` — coordinators fan out with
        per-replica deadlines and, under a sloppy quorum, extend to fallback
        nodes that hold hints for timed-out primaries.
    replica_timeout_ms / request_timeout_ms:
        Async mode deadlines: how long a coordinator waits for one replica's
        ack before extending/abandoning it, and how long a whole request may
        take before the coordinator answers ``ERROR_REPLY``.  Clients wait
        ``client_timeout_ms`` (1.5 × the request timeout by default) before
        failing over to the next candidate coordinator.
    sync_batch_size:
        Keys per MERKLE_KEY_STATES / HINT_REPLAY / KEY_HANDOFF message (also
        the read-repair batch size).
    merkle_fanout / merkle_depth:
        Shape of the hash trees used by the Merkle-delta exchange.
    merkle_maintenance:
        ``"incremental"`` (default) — every server carries a write-maintained
        :class:`~repro.kvstore.merkle_index.MerkleIndex` and exchanges take
        cheap digest snapshots; ``"rebuild"`` — the pre-index behaviour of
        re-hashing the whole key space per exchange, kept for the
        maintenance-cost ablation.
    read_repair_batch_ms:
        Coalescing window for read-repair pushes: repairs destined for the
        same stale replica within this window ride one READ_REPAIR message
        (a full ``sync_batch_size`` batch flushes immediately; ``0`` disables
        coalescing and sends each repair at once).
    deadline_mode:
        Async-mode per-replica deadlines: ``"fixed"`` (default) arms
        ``replica_timeout_ms`` for every replica; ``"adaptive"`` arms an EWMA
        of the replica's observed ack latency scaled by
        :data:`ADAPTIVE_DEADLINE_MULTIPLIER` and clamped to
        [``deadline_floor_ms``, ``deadline_ceiling_ms``].
    deadline_floor_ms / deadline_ceiling_ms:
        Clamp for adaptive deadlines.  The ceiling defaults to
        ``replica_timeout_ms`` so adaptation only ever tightens failure
        detection; the floor keeps a single latency spike from mass-expiring
        healthy replicas.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 server_ids: Sequence[str] = ("A", "B", "C"),
                 quorum: Optional[QuorumConfig] = None,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 loss_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 anti_entropy_interval_ms: Optional[float] = 100.0,
                 anti_entropy_strategy: str = "merkle",
                 hint_replay_interval_ms: Optional[float] = 50.0,
                 hint_backoff_multiplier: float = 6.0,
                 request_mode: str = "membership",
                 replica_timeout_ms: float = 10.0,
                 request_timeout_ms: float = 50.0,
                 client_timeout_ms: Optional[float] = None,
                 sync_batch_size: int = 16,
                 merkle_fanout: int = 16,
                 merkle_depth: int = 2,
                 merkle_maintenance: str = "incremental",
                 read_repair_batch_ms: float = 2.0,
                 deadline_mode: str = "fixed",
                 deadline_floor_ms: float = 2.0,
                 deadline_ceiling_ms: Optional[float] = None,
                 virtual_nodes: int = 32,
                 partition_count: int = DEFAULT_PARTITION_COUNT,
                 request_overhead_bytes: int = 64,
                 topology: Optional[Topology] = None,
                 tracer: Optional[Any] = None) -> None:
        if not server_ids:
            raise ConfigurationError("at least one server id is required")
        if anti_entropy_strategy not in ANTI_ENTROPY_STRATEGIES:
            raise ConfigurationError(
                f"unknown anti-entropy strategy {anti_entropy_strategy!r}; "
                f"choose from {ANTI_ENTROPY_STRATEGIES}"
            )
        if request_mode not in REQUEST_MODES:
            raise ConfigurationError(
                f"unknown request mode {request_mode!r}; choose from {REQUEST_MODES}"
            )
        if merkle_maintenance not in MERKLE_MAINTENANCE_MODES:
            raise ConfigurationError(
                f"unknown merkle maintenance mode {merkle_maintenance!r}; "
                f"choose from {MERKLE_MAINTENANCE_MODES}"
            )
        if deadline_mode not in DEADLINE_MODES:
            raise ConfigurationError(
                f"unknown deadline mode {deadline_mode!r}; choose from {DEADLINE_MODES}"
            )
        if replica_timeout_ms <= 0 or request_timeout_ms <= 0:
            raise ConfigurationError("async timeouts must be positive")
        if read_repair_batch_ms < 0:
            raise ConfigurationError(
                f"read_repair_batch_ms must be >= 0, got {read_repair_batch_ms}"
            )
        if deadline_floor_ms <= 0:
            raise ConfigurationError(
                f"deadline_floor_ms must be positive, got {deadline_floor_ms}"
            )
        resolved_ceiling = (deadline_ceiling_ms if deadline_ceiling_ms is not None
                            else replica_timeout_ms)
        if resolved_ceiling < deadline_floor_ms:
            raise ConfigurationError(
                f"deadline_ceiling_ms ({resolved_ceiling}) must be >= "
                f"deadline_floor_ms ({deadline_floor_ms})"
            )
        if sync_batch_size < 1:
            raise ConfigurationError(f"sync_batch_size must be >= 1, got {sync_batch_size}")
        if hint_backoff_multiplier <= 0:
            raise ConfigurationError(
                f"hint_backoff_multiplier must be positive, got {hint_backoff_multiplier}"
            )
        self.mechanism = mechanism
        self.quorum = quorum or QuorumConfig(n=min(3, len(server_ids)),
                                             r=min(2, len(server_ids)),
                                             w=min(2, len(server_ids)))
        self.simulation = Simulation(seed=seed)
        self.partitions = PartitionManager()
        self.transport = Transport(
            self.simulation,
            latency=latency or SizeDependentLatency(),
            loss_probability=loss_probability,
            duplicate_probability=duplicate_probability,
            partitions=self.partitions,
        )
        self.ring = ConsistentHashRing(server_ids, virtual_nodes=virtual_nodes)
        #: Datacenter assignment; ``None`` means a single implicit DC and
        #: keeps placement byte-identical to the pre-topology behavior.
        self.topology = topology
        self.membership = Membership(server_ids, topology=topology)
        # The cluster-wide range ↔ vnode mapping: every server divides its
        # key space into the same fixed partitions, so per-range digests are
        # comparable between peers and handoff can move whole ranges.
        self.partition_map = PartitionMap(partition_count)
        self.placement = PlacementService(self.ring, self.membership,
                                          self.quorum,
                                          partition_map=self.partition_map,
                                          topology=topology)
        self.write_log = WriteLog()
        self.request_overhead_bytes = request_overhead_bytes
        self.request_mode = request_mode
        self.replica_timeout_ms = replica_timeout_ms
        self.request_timeout_ms = request_timeout_ms
        self.client_timeout_ms = (client_timeout_ms if client_timeout_ms is not None
                                  else request_timeout_ms * 1.5)
        self.anti_entropy_strategy = anti_entropy_strategy
        self.sync_batch_size = sync_batch_size
        self.merkle_fanout = merkle_fanout
        self.merkle_depth = merkle_depth
        self.merkle_maintenance = merkle_maintenance
        self.read_repair_batch_ms = read_repair_batch_ms
        self.deadline_mode = deadline_mode
        self.deadline_floor_ms = deadline_floor_ms
        self.deadline_ceiling_ms = resolved_ceiling
        self.hint_backoff_multiplier = hint_backoff_multiplier
        self.merkle_stats = MerkleSyncStats()
        #: Span emitter shared by every hosted machine (inert by default;
        #: span events bypass the simulation, so determinism is preserved).
        self.tracer = tracer if tracer is not None else NO_TRACER
        self._anti_entropy_interval_ms = anti_entropy_interval_ms
        self._departed_stats: Dict[str, int] = {}
        self._metrics_registry: Optional[MetricsRegistry] = None
        #: The env the hosted protocol machines read their configuration
        #: through (live proxy, so runtime knob tweaks keep working).
        self.protocol_env = _ClusterEnv(self)

        self.servers: Dict[str, MessageServer] = {}
        for server_id in server_ids:
            server = MessageServer(server_id, mechanism, self)
            self.servers[server_id] = server
            self.transport.register(server_id, server.handle_message)

        self.clients: Dict[str, SimulatedClient] = {}
        self.anti_entropy: Optional[AntiEntropyDaemon] = None
        if anti_entropy_interval_ms is not None and len(server_ids) > 1:
            self.anti_entropy = AntiEntropyDaemon(
                self.simulation,
                self._trigger_sync,
                list(server_ids),
                interval_ms=anti_entropy_interval_ms,
                eligible=self.membership.is_up,
            )
        self.hinted_handoff: Optional[HintedHandoffDaemon] = None
        if hint_replay_interval_ms is not None:
            self.hinted_handoff = HintedHandoffDaemon(
                self.simulation,
                sources=self._hint_sources,
                trigger_replay=self._trigger_hint_replay,
                interval_ms=hint_replay_interval_ms,
            )
        # Nudge hint replay as soon as a node recovers rather than waiting
        # for the next daemon tick.
        self.membership.subscribe(self._on_membership_event)

    @property
    def hinted_handoff_enabled(self) -> bool:
        """Whether coordinators store hints for unreachable primaries."""
        return self.hinted_handoff is not None

    # ------------------------------------------------------------------ #
    # Topology management
    # ------------------------------------------------------------------ #
    def client(self, client_id: str) -> SimulatedClient:
        """Create (or return) the client node with the given id."""
        if client_id in self.clients:
            return self.clients[client_id]
        client = SimulatedClient(client_id, self)
        self.clients[client_id] = client
        self.transport.register(client.address, client.handle_message)
        return client

    def _trigger_sync(self, source_id: str, target_id: str) -> None:
        self.start_exchange(source_id, target_id)

    def start_exchange(self, source_id: str, target_id: str,
                       strategy: Optional[str] = None) -> None:
        """Start one anti-entropy exchange using the configured strategy."""
        source = self.servers.get(source_id)
        if source is None:
            return
        if (strategy or self.anti_entropy_strategy) == "full":
            source.start_sync_with(target_id)
        else:
            source.start_merkle_sync_with(target_id)

    def _hint_sources(self) -> List[str]:
        return [server_id for server_id, server in sorted(self.servers.items())
                if server.node.pending_hints() > 0
                and self.membership.is_up(server_id)]

    def _trigger_hint_replay(self, server_id: str) -> int:
        server = self.servers.get(server_id)
        return server.replay_hints() if server is not None else 0

    def _on_membership_event(self, node_id: str, event: str) -> None:
        if event != "up" or self.hinted_handoff is None:
            return
        holders = [server_id for server_id, server in sorted(self.servers.items())
                   if node_id in server.node.hint_targets()]
        if holders:
            self.simulation.schedule(
                0.1,
                lambda: [self._trigger_hint_replay(server_id) for server_id in holders],
                label=f"hint-replay-nudge:{node_id}",
            )

    def fail_node(self, server_id: str) -> None:
        """Crash a server: it stops receiving messages and is marked down."""
        self.membership.mark_down(server_id)
        self.transport.unregister(server_id)

    def shutdown_node(self, server_id: str) -> None:
        """Cleanly stop a server (planned maintenance, rolling restart).

        Unlike :meth:`fail_node`, the storage layer gets to finish its
        bookkeeping: the Merkle index flushes its dirty buckets and the node
        marks its on-disk index clean, so a later :meth:`recover_node` adopts
        the maintained digests instead of rebuilding every occupied vnode's
        tree (counted in the ``rebuilds_skipped`` stat).
        """
        server = self.servers[server_id]
        server.node.shutdown()
        self.membership.mark_down(server_id)
        self.transport.unregister(server_id)

    def recover_node(self, server_id: str, wipe: bool = False,
                     wipe_partitions: Optional[Sequence[int]] = None) -> None:
        """Bring a crashed (or cleanly stopped) server back.

        With ``wipe=False`` the pre-crash state is retained (process restart)
        — including any hints the node was holding for others, which are
        persisted in the storage layer and resume replaying; with
        ``wipe=True`` the node rejoins with empty storage (disk loss), losing
        both its key states and its held hints, and must be repopulated by
        other nodes' hint replays and anti-entropy.  ``wipe_partitions``
        models a partial disk loss: only the named vnodes' key states (and
        the hints for keys in those ranges) are dropped, the other vnodes
        survive the crash intact.

        The incremental Merkle index follows the disk's fate: after a crash a
        restart rebuilds it from the surviving storage (the in-memory trees
        died with the process; only vnodes that still hold keys pay a
        rebuild), a wipe empties it alongside the key states — but after a
        *clean* :meth:`shutdown_node` the index was flushed and marked clean,
        so the restart adopts it wholesale and skips the rebuilds.
        """
        server = self.servers[server_id]
        server.on_recover(wipe, wipe_partitions=wipe_partitions)
        if not self.transport.is_registered(server_id):
            self.transport.register(server_id, server.handle_message)
        self.membership.mark_up(server_id)

    def join_node(self, server_id: str, dc: Optional[str] = None) -> int:
        """Add a new (empty) server to the running cluster.

        The ring is rebalanced and, for every key whose preference list now
        includes the newcomer, one current holder pushes the key's state via
        KEY_HANDOFF.  Returns the number of keys scheduled for handoff.
        ``dc`` places the newcomer in a datacenter (topology clusters only).
        """
        if server_id in self.servers:
            raise ConfigurationError(f"server {server_id!r} already in the cluster")
        ring_before = ConsistentHashRing(self.ring.nodes(),
                                         virtual_nodes=self.ring.virtual_nodes)
        self.ring.add_node(server_id)
        self.membership.add(server_id, dc=dc)
        server = MessageServer(server_id, self.mechanism, self)
        self.servers[server_id] = server
        self.transport.register(server_id, server.handle_message)
        if self.anti_entropy is not None:
            self.anti_entropy.add_node(server_id)
        elif self._anti_entropy_interval_ms is not None and len(self.servers) > 1:
            self.anti_entropy = AntiEntropyDaemon(
                self.simulation,
                self._trigger_sync,
                list(self.servers),
                interval_ms=self._anti_entropy_interval_ms,
                eligible=self.membership.is_up,
            )

        moves = rebalance_plan(ring_before, self.ring,
                               self.key_universe(), self.quorum.n)
        batches: Dict[Tuple[str, str], List[str]] = {}
        for move in moves:
            gained = [node for node in move.gained if node in self.servers]
            if not gained:
                continue
            # Only a live node can act as the handoff source — a crashed
            # replica's storage is unreachable until it recovers.
            holders = [node for node in move.owners_before
                       if node in self.servers and self.membership.is_up(node)
                       and self.servers[node].node.storage.has_key(move.key)]
            if not holders:  # key held off its preference list (e.g. post-churn)
                holders = [node for node, srv in sorted(self.servers.items())
                           if self.membership.is_up(node)
                           and srv.node.storage.has_key(move.key)]
            if not holders:
                continue
            for target in gained:
                batches.setdefault((holders[0], target), []).append(move.key)
        handed_off = 0
        for (source_id, target_id), keys in sorted(batches.items()):
            self.servers[source_id].send_key_handoff(target_id, keys)
            handed_off += len(keys)
        return handed_off

    def decommission_node(self, server_id: str) -> int:
        """Gracefully remove a server from the running cluster.

        Before leaving, the node pushes each of its keys to the key's replica
        homes on the shrunk ring, so no singly-replicated state is lost.
        Returns the number of key states pushed.
        """
        if server_id not in self.servers:
            raise ConfigurationError(f"unknown server {server_id!r}")
        server = self.servers[server_id]
        self.ring.remove_node(server_id)

        # A graceful leave pushes the node's keys to their remaining replica
        # homes — but only a live node can do that; removing a crashed node
        # just drops it (its data is whatever already replicated elsewhere).
        handed_off = 0
        if self.membership.is_up(server_id):
            batches: Dict[str, List[str]] = {}
            for key in server.node.storage.keys():
                reachable = [target
                             for target in self.ring.preference_list(key, self.quorum.n)
                             if target != server_id and target in self.servers
                             and self.can_reach(server_id, target)]
                if not reachable:
                    # Handing off into a partition would silently drop the
                    # key's (possibly only) copy; refuse the graceful leave.
                    self.ring.add_node(server_id)
                    raise ConfigurationError(
                        f"cannot decommission {server_id!r}: no reachable "
                        f"replica home for key {key!r}"
                    )
                for target in reachable:
                    batches.setdefault(target, []).append(key)
            for target_id, keys in sorted(batches.items()):
                server.send_key_handoff(target_id, keys)
                handed_off += len(keys)

        self.membership.remove(server_id)
        if self.anti_entropy is not None:
            self.anti_entropy.remove_node(server_id)
        self.servers.pop(server_id)
        self.transport.unregister(server_id)
        # Stats of the departed node still belong to the run's totals.
        for name, value in server.node.stats.items():
            self._departed_stats[name] = self._departed_stats.get(name, 0) + value
        # Hints destined for the removed node can never be replayed; purge
        # them everywhere so they don't sit in the pending counts forever.
        for remaining in self.servers.values():
            remaining.node.clear_hints(server_id)
        return handed_off

    def can_reach(self, source_id: str, target_id: str) -> bool:
        """Whether ``source_id`` can currently deliver messages to ``target_id``.

        This is the coordinator's failure-detector view: a node is unreachable
        when it is marked down, deregistered from the transport, or cut off by
        a partition.
        """
        return (self.membership.is_up(target_id)
                and self.transport.is_registered(target_id)
                and self.partitions.can_communicate(source_id, target_id))

    # ------------------------------------------------------------------ #
    # Execution helpers
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Advance the simulation (delegates to :meth:`Simulation.run`)."""
        self.simulation.run(until=until, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> None:
        """Stop background daemons and run every outstanding event."""
        if self.anti_entropy is not None:
            self.anti_entropy.stop()
        if self.hinted_handoff is not None:
            self.hinted_handoff.stop()
        self.simulation.run_until_idle(max_events=max_events)

    def run_anti_entropy_round(self, strategy: Optional[str] = None,
                               settle: bool = True) -> None:
        """Start one exchange for every reachable server pair, then settle.

        Used by tests and scenarios to force convergence deterministically
        after the background daemons have been stopped.
        """
        server_ids = sorted(self.servers)
        for i, source_id in enumerate(server_ids):
            for target_id in server_ids[i + 1:]:
                if (self.membership.is_up(source_id)
                        and self.can_reach(source_id, target_id)):
                    self.start_exchange(source_id, target_id, strategy)
        if settle:
            self.simulation.run_until_idle()

    def key_universe(self) -> List[str]:
        """Every key held by any live server, sorted."""
        keys = set()
        for server in self.servers.values():
            keys.update(server.node.storage.keys())
        return sorted(keys)

    def is_converged(self) -> bool:
        """True iff every server stores an identical sibling set for every key."""
        for key in self.key_universe():
            fingerprints = {key_fingerprint(server.node, key)
                            for server in self.servers.values()}
            if len(fingerprints) > 1:
                return False
        return True

    def converge(self, max_rounds: int = 30, strategy: Optional[str] = None) -> int:
        """Run anti-entropy rounds until every replica agrees; returns rounds.

        Stops the background daemons first (they are periodic tasks and would
        keep the event queue from ever going idle), then drives explicit
        all-pairs rounds — the deterministic "settle everything" helper tests
        and scenarios use after a workload finishes.
        """
        self.drain()
        if self.is_converged():
            return 0
        for round_number in range(1, max_rounds + 1):
            self.run_anti_entropy_round(strategy)
            if self.is_converged():
                return round_number
        raise ConfigurationError(f"cluster did not converge within {max_rounds} rounds")

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def all_request_records(self) -> List[RequestRecord]:
        """Every request completed by every client, in completion order."""
        records: List[RequestRecord] = []
        for client in self.clients.values():
            records.extend(client.records)
        records.sort(key=lambda record: record.finished_at)
        return records

    def metadata_entries(self) -> int:
        """Total causality-metadata entries stored across the cluster."""
        return sum(server.node.metadata_entries() for server in self.servers.values())

    def metadata_bytes(self) -> int:
        """Total causality-metadata bytes stored across the cluster."""
        return sum(server.node.metadata_bytes() for server in self.servers.values())

    def sync_bytes(self) -> int:
        """Total bytes sent so far on anti-entropy messages (either strategy)."""
        return self.transport.stats.bytes_for(*SYNC_MESSAGE_TYPES)

    def sibling_counts(self, key: str) -> Dict[str, int]:
        """Live sibling counts of ``key`` on every server."""
        return {
            server_id: len(server.node.siblings_of(key))
            for server_id, server in self.servers.items()
        }

    def stat_totals(self) -> Dict[str, int]:
        """Per-node operation counters summed across the cluster.

        Includes the counters of gracefully decommissioned nodes, so churn
        reports account for work done before a departure.
        """
        totals: Dict[str, int] = dict(self._departed_stats)
        for server in self.servers.values():
            for name, value in server.node.stats.items():
                totals[name] = totals.get(name, 0) + value
        totals["pending_hints"] = sum(server.node.pending_hints()
                                      for server in self.servers.values())
        return totals

    def metrics_registry(self) -> MetricsRegistry:
        """The cluster's unified metrics registry (built once, reads live)."""
        if self._metrics_registry is None:
            self._metrics_registry = build_cluster_registry(self)
        return self._metrics_registry

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One flat, stable, JSON-serializable view of every cluster stat."""
        return self.metrics_registry().snapshot()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SimulatedCluster(mechanism={self.mechanism.name!r}, "
            f"servers={sorted(self.servers)}, clients={len(self.clients)})"
        )
