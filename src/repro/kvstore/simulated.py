"""The simulated message-passing cluster: Dynamo/Riak over the event simulator.

This is the substrate that replaces the paper's modified-Riak testbed for the
latency experiment (E4) and for integration tests that need real replication
traffic (quorums, read repair, anti-entropy, partitions).  Everything travels
as :class:`~repro.network.message.Message` objects through a
:class:`~repro.network.transport.Transport`, so metadata size directly
influences request latency via the size-dependent latency model.

Topology and protocol
---------------------
* Each physical server runs a :class:`MessageServer` wrapping a
  :class:`~repro.kvstore.server.StorageNode`.
* Clients are :class:`SimulatedClient` nodes that send ``COORDINATE_GET`` /
  ``COORDINATE_PUT`` to the key's coordinator (resolved through the placement
  service), and receive ``GET_REPLY`` / ``PUT_REPLY``.
* The coordinator fans out to the key's replicas, waits for the configured
  R/W quorum, performs read repair on divergent read replies, and answers the
  client.
* A background :class:`~repro.kvstore.anti_entropy.AntiEntropyDaemon`
  periodically synchronises replica pairs, by default with the **Merkle-delta
  protocol** (below); the original full-state exchange remains available via
  ``anti_entropy_strategy="full"``.

Merkle-delta anti-entropy (per vnode range)
-------------------------------------------
Every server divides its key space into the cluster-wide fixed partitions of
a :class:`~repro.cluster.ring.PartitionMap` and maintains one hash tree per
partition (vnode range).  A sync round between a source and a target then
compares ranges, not the whole keyspace:

1. the source sends the root digest of every non-empty local range in one
   ``MERKLE_PARTITION_DIGESTS`` message;
2. the target compares range by range (absent ranges hash to the well-known
   empty root) and names the differing ranges in a
   ``MERKLE_PARTITION_DIFF`` reply — on a synced pair the exchange ends
   here, two messages total;
3. each differing range's tree is walked level by level
   (``MERKLE_SYNC_REQUEST`` / ``MERKLE_SYNC_RESPONSE``), the source shipping
   child digests of differing paths until the leaf-bucket level, where the
   target's response also carries the per-key fingerprints of the differing
   buckets;
4. the source computes the exact divergent key set from the fingerprints and
   ships only those keys' states, batched ``sync_batch_size`` keys per
   ``MERKLE_KEY_STATES`` message to amortise per-message latency; the target
   merges them and replies in kind with its own states for the same keys.

Bytes on the wire are therefore proportional to the *divergence*, not the
store size, and digest comparisons are confined to the ranges that actually
differ.  All protocol messages pay the normal transport latency/size costs,
and every merge is idempotent, so lost or duplicated messages merely delay
convergence until a later round.  (In ``merkle_maintenance="rebuild"`` mode
no per-range trees exist; the legacy single-tree protocol starts at the
whole-keyspace root instead.)

The trees themselves are **incrementally maintained**, Riak-style: each
server carries a :class:`~repro.kvstore.merkle_index.VnodeIndexSet` — one
:class:`~repro.kvstore.merkle_index.MerkleIndex` per vnode range, each
subscribed to its range's slice of the storage mutation stream — so every
write path (client puts, replica merges, read repair, Merkle-delta
transfers, hint replay, rebalancing handoff) re-fingerprints only the
mutated key and dirties its leaf bucket in the one affected range tree;
exchange snapshots just flush the dirty buckets and copy digests out.  Tree
work per exchange is therefore O(divergent buckets), not O(keys) — set
``merkle_maintenance="rebuild"`` to restore the old rebuild-per-exchange
behaviour for cost comparisons.  Rebalancing handoff (``KEY_HANDOFF``) ships
each key's maintained fingerprint alongside its state, so moving a vnode's
keys re-hashes ~nothing on either side: the receiver adopts the digests
(counted in ``fingerprints_imported``) instead of re-fingerprinting.
Read-repair pushes are coalesced the same way sync transfers are: repairs
for one stale replica ride a single batched ``READ_REPAIR`` message per
coalescing window.

Dynamic membership and hinted handoff
-------------------------------------
The cluster is elastic: :meth:`SimulatedCluster.join_node` adds a server at
runtime (the ring rebalances and existing replicas push the keys the newcomer
now owns via ``KEY_HANDOFF``), :meth:`SimulatedCluster.decommission_node`
removes one gracefully (it first pushes each of its keys to the key's
remaining replica homes), and :meth:`SimulatedCluster.fail_node` /
:meth:`SimulatedCluster.recover_node` model crashes — optionally with wiped
storage on recovery.

When a write coordinator cannot reach one of the key's primary replicas
(crashed, or cut off by a partition), the write is held as a *hint* — target
id plus the post-write state — persisted in the holder's storage layer, so a
process restart of the holder does not lose it (a wiped disk does).  The
background :class:`~repro.kvstore.anti_entropy.HintedHandoffDaemon` replays
hints (``HINT_REPLAY`` / ``HINT_ACK``) once the target is reachable again; a
membership listener also nudges replay immediately on recovery.

Request modes: failure detector vs deadlines
--------------------------------------------
The cluster runs in one of two request modes (``request_mode``):

* ``"membership"`` (default) — the PR-1 behaviour: the coordinator consults
  the membership view's failure detector (``active_replicas`` /
  ``can_reach``) to decide whom to contact and for whom to hold hints.
  Hints live on the coordinator.
* ``"async"`` — Dynamo-style timeout-driven coordination: the coordinator
  fans out to the key's N *primary* replicas regardless of the membership
  view, arms a per-replica deadline, and collects R/W acks.  When a replica's
  deadline fires and the quorum is **sloppy** (``QuorumConfig.sloppy``), the
  preference list is extended past the N primaries to the next node on the
  ring, which accepts the write together with a hint naming the intended
  primary; hint replay later returns the data to the primary.  With a
  **strict** quorum (or an exhausted ring) the coordinator holds the hint
  itself and the request fails with ``ERROR_REPLY`` once the quorum is
  infeasible or the overall request deadline fires.  Clients in async mode
  arm their own deadline and fail over to the next candidate coordinator on
  the (extended) preference list before reporting the request as failed.

Per-replica deadlines are a fixed ``replica_timeout_ms`` by default;
``deadline_mode="adaptive"`` instead arms an EWMA of each replica's observed
ack latency (scaled for headroom, clamped to a floor/ceiling), so failover
off a slow replica happens in a few of its usual round trips instead of a
worst-case constant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..clocks.interface import CausalityMechanism, Sibling
from ..cluster.membership import Membership
from ..cluster.preference_list import PlacementService, QuorumConfig
from ..cluster.ring import (
    DEFAULT_PARTITION_COUNT,
    ConsistentHashRing,
    PartitionMap,
    rebalance_plan,
)
from ..core.exceptions import ConfigurationError
from ..network.latency import LatencyModel, SizeDependentLatency
from ..network.message import Message, MessageType
from ..network.partition import PartitionManager
from ..network.simulator import Simulation
from ..network.transport import Transport
from .anti_entropy import AntiEntropyDaemon, HintedHandoffDaemon
from .client import ClientSession, GetResult, PutResult
from .context import CausalContext
from .merkle import MERKLE_MAINTENANCE_MODES, MerkleTree, key_fingerprint
from .merkle_index import VnodeIndexSet
from .read_repair import ReadRepairStats, plan_read_repair
from .server import StorageNode
from .write_log import WriteLog

#: Wire size of one tree digest in the Merkle exchange (sha256).
DIGEST_BYTES = 32

ANTI_ENTROPY_STRATEGIES = ("merkle", "full")

#: How coordinators decide whom to contact: consult the membership view's
#: failure detector ("membership", the default), or fan out with per-replica
#: deadlines and sloppy-quorum fallbacks ("async").
REQUEST_MODES = ("membership", "async")

#: How async-mode per-replica deadlines are chosen: one fixed timeout
#: ("fixed"), or an EWMA of each replica's observed ack latency, clamped to a
#: floor/ceiling ("adaptive").
DEADLINE_MODES = ("fixed", "adaptive")

#: EWMA smoothing factor for observed per-replica ack latency (adaptive
#: deadline mode): weight given to the newest observation.
DEADLINE_EWMA_ALPHA = 0.3

#: Adaptive deadline = EWMA x this headroom multiplier (then clamped), so a
#: replica is only declared late when it takes several times its usual
#: round trip.
ADAPTIVE_DEADLINE_MULTIPLIER = 3.0

#: Message types that carry anti-entropy traffic (either strategy); the single
#: source of truth for "sync bytes" measurements in reports and benchmarks.
SYNC_MESSAGE_TYPES = (
    MessageType.SYNC_REQUEST.value,
    MessageType.SYNC_REPLY.value,
    MessageType.MERKLE_PARTITION_DIGESTS.value,
    MessageType.MERKLE_PARTITION_DIFF.value,
    MessageType.MERKLE_SYNC_REQUEST.value,
    MessageType.MERKLE_SYNC_RESPONSE.value,
    MessageType.MERKLE_KEY_STATES.value,
)


def _chunked(items: Sequence, size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


def default_value_size(value: Any) -> int:
    """Approximate wire size of an application value (bytes)."""
    if isinstance(value, bytes):
        return len(value)
    return len(repr(value).encode("utf-8"))


@dataclass
class RequestRecord:
    """One completed (or failed) client request, for latency analysis."""

    operation: str
    key: str
    client_id: str
    started_at: float
    finished_at: float
    ok: bool
    coordinator: str = ""
    sibling_count: int = 0
    context_bytes: int = 0
    #: Failure reason for ``ok=False`` records ("timeout", "quorum_unreachable", ...).
    error: str = ""

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in simulated milliseconds."""
        return self.finished_at - self.started_at


@dataclass
class _PendingCoordination:
    """Coordinator-side bookkeeping for one in-flight client request."""

    kind: str                       # "get" or "put"
    key: str
    client_address: str
    request_id: int
    needed: int
    replies: List = field(default_factory=list)
    replied_nodes: List[str] = field(default_factory=list)
    done: bool = False
    # put-only fields
    new_state: Any = None
    sibling: Optional[Sibling] = None
    # async-mode fields
    mode: str = "membership"
    tried: List[str] = field(default_factory=list)       # every node contacted
    timed_out: List[str] = field(default_factory=list)
    deadlines: Dict[str, Any] = field(default_factory=dict)   # replica -> handle
    sent_at: Dict[str, float] = field(default_factory=dict)   # replica -> send time
    request_deadline: Any = None
    #: fallback -> the primary it stands in for (hint chains survive
    #: a fallback itself timing out).
    standing_in: Dict[str, str] = field(default_factory=dict)


@dataclass
class MerkleSyncStats:
    """Cluster-wide counters for the Merkle-delta anti-entropy protocol."""

    exchanges_started: int = 0
    exchanges_clean: int = 0        # root digests matched, nothing to do
    levels_sent: int = 0
    keys_transferred: int = 0
    partitions_compared: int = 0    # per-range root comparisons performed
    partitions_differing: int = 0   # ranges whose roots differed (descended)


@dataclass
class _MerkleSession:
    """Source-side state of one in-flight Merkle exchange.

    Per-vnode exchanges descend each differing range independently; the
    session tracks one frozen tree per open partition (``None`` is the
    whole-keyspace tree of the legacy single-tree protocol) and completes
    when every opened partition has finished its descent.
    """

    peer_id: str
    trees: Dict[Optional[int], MerkleTree] = field(default_factory=dict)
    open_partitions: set = field(default_factory=set)


class MessageServer:
    """A storage server participating in the message-passing protocol."""

    def __init__(self,
                 node_id: str,
                 mechanism: CausalityMechanism,
                 cluster: "SimulatedCluster") -> None:
        self.node = StorageNode(node_id, mechanism,
                                partition_map=cluster.partition_map)
        self.node_id = node_id
        self.mechanism = mechanism
        self.cluster = cluster
        if cluster.merkle_maintenance == "incremental":
            # The write-maintained hash trees, one per vnode range: every
            # storage mutation (client writes, merges, read repair, hint
            # replay, handoff) updates the mutated key's range tree in place,
            # so exchanges snapshot per-range digests instead of rebuilding.
            self.node.attach_merkle_index(VnodeIndexSet(
                mechanism,
                partition_map=cluster.partition_map,
                fanout=cluster.merkle_fanout,
                depth=cluster.merkle_depth,
                counters=self.node.stats,
            ))
        self._pending: Dict[int, _PendingCoordination] = {}
        self._request_ids = itertools.count(1)
        self.read_repair_stats = ReadRepairStats()
        # Read-repair pushes are coalesced per target replica (mirroring
        # MERKLE_KEY_STATES batching): repairs queue here and flush as one
        # READ_REPAIR message per target when the batch fills or the
        # coalescing window closes.
        self._repair_queue: Dict[str, Dict[str, Any]] = {}
        self._repair_flush_scheduled = False
        # Adaptive deadlines: EWMA of each replica's observed ack latency.
        self._ack_latency_ewma: Dict[str, float] = {}
        # Merkle exchange state: sessions this node started (it owns the tree
        # snapshots and the per-range descents), and cached trees, keyed by
        # (peer, partition), for exchanges started by others (so digests stay
        # consistent across levels of one range's descent).
        self._merkle_sessions: Dict[int, _MerkleSession] = {}
        self._merkle_session_ids = itertools.count(1)
        self._merkle_peer_trees: Dict[Tuple[str, Optional[int]],
                                      Tuple[int, MerkleTree]] = {}

    # ------------------------------------------------------------------ #
    # Message dispatch
    # ------------------------------------------------------------------ #
    def handle_message(self, message: Message) -> None:
        """Transport entry point."""
        handlers = {
            MessageType.COORDINATE_GET: self._on_coordinate_get,
            MessageType.COORDINATE_PUT: self._on_coordinate_put,
            MessageType.REPLICA_GET: self._on_replica_get,
            MessageType.REPLICA_GET_REPLY: self._on_replica_get_reply,
            MessageType.REPLICA_PUT: self._on_replica_put,
            MessageType.REPLICA_PUT_ACK: self._on_replica_put_ack,
            MessageType.READ_REPAIR: self._on_read_repair,
            MessageType.SYNC_REQUEST: self._on_sync_request,
            MessageType.SYNC_REPLY: self._on_sync_reply,
            MessageType.MERKLE_PARTITION_DIGESTS: self._on_merkle_partition_digests,
            MessageType.MERKLE_PARTITION_DIFF: self._on_merkle_partition_diff,
            MessageType.MERKLE_SYNC_REQUEST: self._on_merkle_sync_request,
            MessageType.MERKLE_SYNC_RESPONSE: self._on_merkle_sync_response,
            MessageType.MERKLE_KEY_STATES: self._on_merkle_key_states,
            MessageType.HINT_REPLAY: self._on_hint_replay,
            MessageType.HINT_ACK: self._on_hint_ack,
            MessageType.KEY_HANDOFF: self._on_key_handoff,
            MessageType.PING: self._on_ping,
        }
        handler = handlers.get(message.msg_type)
        if handler is None:
            return
        handler(message)

    # ------------------------------------------------------------------ #
    # Coordinating a GET
    # ------------------------------------------------------------------ #
    def _on_coordinate_get(self, message: Message) -> None:
        key = message.payload["key"]
        config = self.cluster.quorum
        if self.cluster.request_mode == "async":
            self._coordinate_get_async(message, key)
            return
        replicas = self.cluster.placement.active_replicas(key)
        request_id = next(self._request_ids)
        pending = _PendingCoordination(
            kind="get",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.r, max(len(replicas), 1)),
        )
        self._pending[request_id] = pending

        # The coordinator replies for itself immediately (no network hop).
        pending.replies.append((self.node_id, self.node.state_of(key)))
        pending.replied_nodes.append(self.node_id)

        for replica_id in replicas:
            if replica_id == self.node_id:
                continue
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_GET,
                payload={"key": key, "coordination_id": request_id},
                size_bytes=self.cluster.request_overhead_bytes,
                request_id=request_id,
            ))
        self._maybe_finish_get(request_id)

    def _coordinate_get_async(self, message: Message, key: str) -> None:
        """Deadline-driven GET: fan out to the primaries, extend on timeout."""
        config = self.cluster.quorum
        extended = self.cluster.placement.extended_preference_list(key)
        request_id = next(self._request_ids)
        pending = _PendingCoordination(
            kind="get",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.r, max(len(extended), 1)),
            mode="async",
        )
        self._pending[request_id] = pending
        pending.tried.append(self.node_id)
        primaries = self.cluster.placement.primary_replicas(key)
        # The coordinator's own state only counts toward R when it is one of
        # the key's replica homes — or, under a sloppy quorum, as a fallback
        # read (the client failed over to it, so it stands in the extended
        # top-N); a strict quorum accepts replies from primaries only.
        if self.node_id in primaries or self.cluster.quorum.sloppy:
            pending.replies.append((self.node_id, self.node.state_of(key)))
            pending.replied_nodes.append(self.node_id)
        for replica_id in primaries:
            if replica_id == self.node_id:
                continue
            self._send_async_replica_request(request_id, pending, replica_id)
        self._arm_request_deadline(request_id, pending)
        self._maybe_finish_get(request_id)

    def _on_replica_get(self, message: Message) -> None:
        key = message.payload["key"]
        state = self.node.state_of(key)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.REPLICA_GET_REPLY,
            payload={
                "key": key,
                "state": state,
                "coordination_id": message.payload["coordination_id"],
            },
            size_bytes=self._state_size(key, state),
            request_id=message.request_id,
        ))

    def _on_replica_get_reply(self, message: Message) -> None:
        coordination_id = message.payload["coordination_id"]
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done or pending.kind != "get":
            return
        if message.sender in pending.replied_nodes:
            return  # duplicate delivery
        self._observe_ack_latency(pending, message.sender)
        self.cluster.transport.cancel_deadline(pending.deadlines.pop(message.sender, None))
        pending.replies.append((message.sender, message.payload["state"]))
        pending.replied_nodes.append(message.sender)
        self._maybe_finish_get(coordination_id)

    def _maybe_finish_get(self, coordination_id: int) -> None:
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done:
            return
        if len(pending.replies) < pending.needed:
            return
        pending.done = True
        self._cancel_pending_timers(pending)

        plan = plan_read_repair(self.mechanism, pending.replies)
        self.read_repair_stats.record(plan)
        merged_state = plan.merged_state
        # The coordinator keeps the merged state (it is one of the replicas).
        self.node.local_merge(pending.key, merged_state)
        read = self.mechanism.read(self.node.state_of(pending.key))

        # Repair the stale replicas in the background (coalesced per target).
        for replica_id in plan.stale_replicas:
            if replica_id == self.node_id:
                continue
            self._queue_read_repair(replica_id, pending.key, merged_state)

        context_bytes = self.mechanism.context_bytes(read.context)
        values_bytes = sum(default_value_size(s.value) for s in read.siblings)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.GET_REPLY,
            payload={
                "key": pending.key,
                "siblings": list(read.siblings),
                "mechanism_context": read.context,
                "coordinator": self.node_id,
                "context_bytes": context_bytes,
            },
            size_bytes=values_bytes + context_bytes + self.cluster.request_overhead_bytes,
            request_id=pending.request_id,
        ))
        self._pending.pop(coordination_id, None)

    # ------------------------------------------------------------------ #
    # Coordinating a PUT
    # ------------------------------------------------------------------ #
    def _on_coordinate_put(self, message: Message) -> None:
        key = message.payload["key"]
        sibling: Sibling = message.payload["sibling"]
        context: Optional[CausalContext] = message.payload.get("context")
        client_id = message.payload["client_id"]
        config = self.cluster.quorum
        replicas = self.cluster.placement.active_replicas(key)

        new_state = self.node.local_write(key, context, sibling, client_id)
        self.cluster.write_log.append(
            key, sibling, self.node_id, client_id, self.cluster.simulation.now
        )
        if self.cluster.request_mode == "async":
            self._coordinate_put_async(message, key, sibling, new_state)
            return

        request_id = next(self._request_ids)
        pending = _PendingCoordination(
            kind="put",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.w, max(len(replicas), 1)),
            new_state=new_state,
            sibling=sibling,
        )
        self._pending[request_id] = pending
        pending.replies.append((self.node_id, True))
        pending.replied_nodes.append(self.node_id)

        for replica_id in replicas:
            if replica_id == self.node_id:
                continue
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_PUT,
                payload={"key": key, "state": new_state, "coordination_id": request_id},
                size_bytes=self._state_size(key, new_state),
                request_id=request_id,
            ))
        # Hinted handoff: primaries this coordinator cannot reach right now
        # (crashed, or cut off by a partition) get the write held as a hint,
        # replayed by the handoff daemon once they are reachable again.
        if self.cluster.hinted_handoff_enabled:
            for primary_id in self.cluster.placement.primary_replicas(key):
                if primary_id == self.node_id:
                    continue
                if not self.cluster.can_reach(self.node_id, primary_id):
                    self.node.store_hint(primary_id, key, new_state)
        self._maybe_finish_put(request_id)

    def _coordinate_put_async(self, message: Message, key: str,
                              sibling: Sibling, new_state: Any) -> None:
        """Deadline-driven PUT: fan out to the primaries, collect W acks.

        The membership view is not consulted; a primary that does not ack
        before its deadline is treated as failed, and a sloppy quorum extends
        the preference list to the next ring node, which accepts the write
        together with a hint naming the intended primary.
        """
        config = self.cluster.quorum
        extended = self.cluster.placement.extended_preference_list(key)
        request_id = next(self._request_ids)
        pending = _PendingCoordination(
            kind="put",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.w, max(len(extended), 1)),
            new_state=new_state,
            sibling=sibling,
            mode="async",
        )
        self._pending[request_id] = pending
        pending.tried.append(self.node_id)
        primaries = self.cluster.placement.primary_replicas(key)
        if self.node_id in primaries:
            pending.replies.append((self.node_id, True))
            pending.replied_nodes.append(self.node_id)
        elif config.sloppy:
            # The client failed over to a non-home coordinator: under a
            # sloppy quorum its local copy counts as a fallback ack, and like
            # any fallback it holds a hint so the write reaches a primary.
            if self.cluster.hinted_handoff_enabled:
                self.node.store_hint(primaries[0], key, new_state)
            pending.replies.append((self.node_id, True))
            pending.replied_nodes.append(self.node_id)
        # (strict quorum on a non-home coordinator: only primary acks count)
        for replica_id in primaries:
            if replica_id == self.node_id:
                continue
            self._send_async_replica_request(request_id, pending, replica_id)
        self._arm_request_deadline(request_id, pending)
        self._maybe_finish_put(request_id)

    # ------------------------------------------------------------------ #
    # Async request mode: deadlines, fallbacks, failure replies
    # ------------------------------------------------------------------ #
    def _send_async_replica_request(self, coordination_id: int,
                                    pending: _PendingCoordination,
                                    replica_id: str,
                                    hint_for: Optional[str] = None) -> None:
        """Contact one replica (primary or fallback) and arm its deadline."""
        pending.tried.append(replica_id)
        if hint_for is not None:
            pending.standing_in[replica_id] = hint_for
        if pending.kind == "put":
            payload = {"key": pending.key, "state": pending.new_state,
                       "coordination_id": coordination_id}
            if hint_for is not None:
                payload["hint_for"] = hint_for
            message = Message(
                sender=self.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_PUT,
                payload=payload,
                size_bytes=self._state_size(pending.key, pending.new_state),
                request_id=coordination_id,
            )
        else:
            message = Message(
                sender=self.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_GET,
                payload={"key": pending.key, "coordination_id": coordination_id},
                size_bytes=self.cluster.request_overhead_bytes,
                request_id=coordination_id,
            )
        self.cluster.transport.send(message)
        pending.sent_at[replica_id] = self.cluster.simulation.now
        pending.deadlines[replica_id] = self.cluster.transport.schedule_deadline(
            self._replica_deadline_ms(replica_id),
            lambda: self._on_replica_deadline(coordination_id, replica_id),
            label=f"replica-deadline:{pending.kind}:{replica_id}",
        )

    def _replica_deadline_ms(self, replica_id: str) -> float:
        """How long to wait for this replica's ack before giving up on it.

        ``deadline_mode="fixed"`` uses the cluster-wide ``replica_timeout_ms``.
        ``"adaptive"`` scales an EWMA of the replica's observed ack latency by
        :data:`ADAPTIVE_DEADLINE_MULTIPLIER`, clamped to the configured
        floor/ceiling — fast replicas are declared late sooner (failover
        happens in a few of their round trips, not a worst-case constant),
        while the floor keeps one latency spike from triggering a storm of
        spurious handoffs.  A replica never observed falls back to the fixed
        timeout.
        """
        if self.cluster.deadline_mode != "adaptive":
            return self.cluster.replica_timeout_ms
        ewma = self._ack_latency_ewma.get(replica_id)
        if ewma is None:
            return self.cluster.replica_timeout_ms
        deadline = ewma * ADAPTIVE_DEADLINE_MULTIPLIER
        return max(self.cluster.deadline_floor_ms,
                   min(deadline, self.cluster.deadline_ceiling_ms))

    def _observe_ack_latency(self, pending: _PendingCoordination,
                             replica_id: str) -> None:
        """Fold one observed ack round trip into the replica's latency EWMA."""
        sent_at = pending.sent_at.pop(replica_id, None)
        if sent_at is None:
            return
        observed = self.cluster.simulation.now - sent_at
        previous = self._ack_latency_ewma.get(replica_id)
        if previous is None:
            self._ack_latency_ewma[replica_id] = observed
        else:
            self._ack_latency_ewma[replica_id] = (
                DEADLINE_EWMA_ALPHA * observed
                + (1.0 - DEADLINE_EWMA_ALPHA) * previous
            )

    def _arm_request_deadline(self, coordination_id: int,
                              pending: _PendingCoordination) -> None:
        pending.request_deadline = self.cluster.transport.schedule_deadline(
            self.cluster.request_timeout_ms,
            lambda: self._on_request_deadline(coordination_id),
            label=f"request-deadline:{pending.kind}:{pending.key}",
        )

    def _on_replica_deadline(self, coordination_id: int, replica_id: str) -> None:
        """A contacted replica missed its deadline: extend or give up on it.

        Handoff outlives the client's answer: for a put whose quorum already
        completed, a timed-out primary is still chained to a fallback (or
        covered by a coordinator-held hint), so the write keeps moving toward
        all N replica homes.
        """
        pending = self._pending.get(coordination_id)
        if pending is None:
            return
        pending.deadlines.pop(replica_id, None)
        if replica_id in pending.replied_nodes:
            self._cleanup_if_settled(coordination_id, pending)
            return
        pending.timed_out.append(replica_id)
        # The primary this contact was (transitively) standing in for.
        primary = pending.standing_in.get(replica_id, replica_id)
        extend = self.cluster.quorum.sloppy and (pending.kind == "put" or not pending.done)
        if extend:
            candidates = self.cluster.placement.fallbacks_for(pending.key,
                                                              exclude=pending.tried)
            fallback = candidates[0] if candidates else None
            if fallback is not None:
                self._send_async_replica_request(coordination_id, pending, fallback,
                                                 hint_for=primary if pending.kind == "put" else None)
                return
        # Strict quorum (or ring exhausted): hold the write locally so the
        # primary still converges once it is reachable again.
        if (pending.kind == "put" and self.cluster.hinted_handoff_enabled
                and primary != self.node_id):
            self.node.store_hint(primary, pending.key, pending.new_state)
        if not pending.done:
            possible = len(pending.replies) + len(pending.deadlines)
            if possible < pending.needed:
                self._fail_request(coordination_id, reason="quorum_unreachable")
                return
        self._cleanup_if_settled(coordination_id, pending)

    def _on_request_deadline(self, coordination_id: int) -> None:
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done:
            return
        # This handle just fired; clear it so _fail_request's timer sweep
        # does not also report it as cancelled.
        pending.request_deadline = None
        self._fail_request(coordination_id, reason="request_timeout")

    def _fail_request(self, coordination_id: int, reason: str) -> None:
        """Answer the client with ERROR_REPLY and drop the coordination state.

        The coordinator's local write (and any hints already held) stay in
        place — a failed quorum write may still be partially applied, exactly
        as in Dynamo; anti-entropy and hint replay eventually spread it.
        """
        pending = self._pending.pop(coordination_id, None)
        if pending is None or pending.done:
            return
        pending.done = True
        self._cancel_pending_timers(pending)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.ERROR_REPLY,
            payload={"key": pending.key, "operation": pending.kind,
                     "reason": reason, "coordinator": self.node_id},
            size_bytes=self.cluster.request_overhead_bytes,
            request_id=pending.request_id,
        ))

    def _cancel_pending_timers(self, pending: _PendingCoordination) -> None:
        for handle in pending.deadlines.values():
            self.cluster.transport.cancel_deadline(handle)
        pending.deadlines.clear()
        self.cluster.transport.cancel_deadline(pending.request_deadline)
        pending.request_deadline = None

    def _on_replica_put(self, message: Message) -> None:
        key = message.payload["key"]
        # Sloppy-quorum handoff: a fallback accepting a write on behalf of a
        # timed-out primary also persists a hint naming that primary, so the
        # handoff daemon can return the data once the primary is back.
        hint_for = message.payload.get("hint_for")
        if (hint_for is not None and hint_for != self.node_id
                and self.cluster.hinted_handoff_enabled):
            self.node.store_hint(hint_for, key, message.payload["state"])
        self.node.local_merge(key, message.payload["state"])
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.REPLICA_PUT_ACK,
            payload={"key": key, "coordination_id": message.payload["coordination_id"]},
            size_bytes=self.cluster.request_overhead_bytes,
            request_id=message.request_id,
        ))

    def _on_replica_put_ack(self, message: Message) -> None:
        coordination_id = message.payload["coordination_id"]
        pending = self._pending.get(coordination_id)
        if pending is None or pending.kind != "put":
            return
        if message.sender in pending.replied_nodes:
            return  # duplicate delivery
        self._observe_ack_latency(pending, message.sender)
        self.cluster.transport.cancel_deadline(pending.deadlines.pop(message.sender, None))
        pending.replied_nodes.append(message.sender)
        if pending.done:
            # A slow replica (or handoff fallback) acked after the quorum was
            # already answered — nothing left to do beyond its bookkeeping.
            self._cleanup_if_settled(coordination_id, pending)
            return
        pending.replies.append((message.sender, True))
        self._maybe_finish_put(coordination_id)

    def _maybe_finish_put(self, coordination_id: int) -> None:
        pending = self._pending.get(coordination_id)
        if pending is None or pending.done:
            return
        if len(pending.replies) < pending.needed:
            return
        pending.done = True
        # Only the overall request deadline is disarmed: replicas still
        # outstanding keep their deadlines, so a primary that never acks is
        # still handed off (fallback + hint) even though the client has its
        # answer — Dynamo keeps pushing the write toward all N homes.
        self.cluster.transport.cancel_deadline(pending.request_deadline)
        pending.request_deadline = None
        read = self.mechanism.read(self.node.state_of(pending.key))
        context_bytes = self.mechanism.context_bytes(read.context)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.PUT_REPLY,
            payload={
                "key": pending.key,
                "coordinator": self.node_id,
                "mechanism_context": read.context,
                "siblings": list(read.siblings),
                "context_bytes": context_bytes,
                "sibling": pending.sibling,
            },
            size_bytes=context_bytes + self.cluster.request_overhead_bytes,
            request_id=pending.request_id,
        ))
        self._cleanup_if_settled(coordination_id, pending)

    def _cleanup_if_settled(self, coordination_id: int,
                            pending: _PendingCoordination) -> None:
        """Drop a finished coordination once no replica deadline is armed."""
        if pending.done and not pending.deadlines:
            self._pending.pop(coordination_id, None)

    # ------------------------------------------------------------------ #
    # Read repair / anti-entropy
    # ------------------------------------------------------------------ #
    def _queue_read_repair(self, target_id: str, key: str, state: Any) -> None:
        """Coalesce repair pushes: one READ_REPAIR message per target replica.

        A busy coordinator repairing many keys to the same stale replica pays
        one message (and one per-message overhead) per batch instead of one
        per key — the same amortisation MERKLE_KEY_STATES batching applies to
        sync transfers.  A full batch flushes immediately; otherwise a short
        coalescing window (``read_repair_batch_ms``) gathers repairs from
        nearby reads.  Queued repairs hold the merged state observed at plan
        time; a newer repair for the same key simply replaces it (merges are
        idempotent, so the worst case of losing the race is a second repair
        on a later read).
        """
        batch = self._repair_queue.setdefault(target_id, {})
        batch[key] = state
        if (len(batch) >= self.cluster.sync_batch_size
                or self.cluster.read_repair_batch_ms <= 0):
            self._flush_read_repairs(target_id)
        elif not self._repair_flush_scheduled:
            self._repair_flush_scheduled = True
            self.cluster.simulation.schedule(
                self.cluster.read_repair_batch_ms,
                self._flush_all_read_repairs,
                label=f"read-repair-flush:{self.node_id}",
            )

    def _flush_all_read_repairs(self) -> None:
        self._repair_flush_scheduled = False
        if not self.cluster.transport.is_registered(self.node_id):
            # The coordinator crashed while the coalescing window was open.
            # The queue is process memory, not disk: it dies with the crash
            # (read repair is opportunistic — a later read repairs again).
            self._repair_queue.clear()
            return
        for target_id in sorted(self._repair_queue):
            self._flush_read_repairs(target_id)

    def _flush_read_repairs(self, target_id: str) -> None:
        states = self._repair_queue.pop(target_id, None)
        if not states:
            return
        self.read_repair_stats.batches_sent += 1
        size = (sum(self._payload_state_size(key, state)
                    for key, state in states.items())
                + self.cluster.request_overhead_bytes)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=target_id,
            msg_type=MessageType.READ_REPAIR,
            payload={"states": states},
            size_bytes=size,
        ))

    def _on_read_repair(self, message: Message) -> None:
        for key, state in message.payload["states"].items():
            self.node.local_merge(key, state)

    def _on_sync_request(self, message: Message) -> None:
        states = message.payload["states"]
        reply_states = {}
        for key, state in states.items():
            self.node.local_merge(key, state)
        for key in self.node.storage.keys():
            reply_states[key] = self.node.state_of(key)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.SYNC_REPLY,
            payload={"states": reply_states},
            size_bytes=sum(self._state_size(k, s) for k, s in reply_states.items()),
            request_id=message.request_id,
        ))

    def _on_sync_reply(self, message: Message) -> None:
        for key, state in message.payload["states"].items():
            self.node.local_merge(key, state)

    # ------------------------------------------------------------------ #
    # Merkle-delta anti-entropy (hashtree exchange)
    # ------------------------------------------------------------------ #
    def _merkle_tree(self, partition: Optional[int] = None) -> MerkleTree:
        """This node's hash tree for one exchange session (or one range of it).

        With incremental maintenance (the default) this snapshots the
        write-maintained per-vnode index set — digests were kept current by
        the mutation listeners, so the only work left is flushing dirty
        buckets and copying digests out; ``partition`` selects a single
        range's tree, None the combined whole-node tree.  In
        ``merkle_maintenance="rebuild"`` mode (the pre-index behaviour, kept
        for the maintenance-cost ablation) the whole key space is re-hashed
        and the cost is counted in the node's ``full_rebuilds`` /
        ``keys_hashed`` stats.
        """
        if self.node.merkle_index is not None:
            if partition is not None:
                return self.node.merkle_index.snapshot_partition(partition)
            return self.node.merkle_index.snapshot()
        self.node.stats["full_rebuilds"] += 1
        self.node.stats["keys_hashed"] += len(self.node.storage)
        return MerkleTree.for_node(self.node,
                                   fanout=self.cluster.merkle_fanout,
                                   depth=self.cluster.merkle_depth)

    def start_merkle_sync_with(self, peer_id: str) -> None:
        """Begin a Merkle-delta exchange with ``peer_id``.

        With per-vnode indexes the exchange opens with one message carrying
        the root digest of every non-empty local range
        (``MERKLE_PARTITION_DIGESTS``); the peer compares range by range and
        names the differing ones, and only those ranges' trees are descended
        — a mostly-synced pair pays two messages total no matter how many
        ranges they hold.  Without a maintained index (rebuild mode) the
        legacy single-tree protocol runs: the whole keyspace is one tree and
        the exchange starts at its root.
        """
        # A lost message leaves a session dangling; starting a new exchange
        # with the same peer supersedes any older one.
        self._merkle_sessions = {
            session_id: session
            for session_id, session in self._merkle_sessions.items()
            if session.peer_id != peer_id
        }
        session_id = next(self._merkle_session_ids)
        session = _MerkleSession(peer_id)
        self._merkle_sessions[session_id] = session
        self.cluster.merkle_stats.exchanges_started += 1

        index = self.node.merkle_index
        if index is not None and hasattr(index, "partition_ids"):
            # Per-range opening: snapshot and advertise non-empty ranges only
            # (absent ranges hash to the well-known empty root on both sides).
            roots: Dict[int, bytes] = {}
            for partition_id in index.partition_ids():
                if index.index_for(partition_id).key_count == 0:
                    continue
                tree = index.snapshot_partition(partition_id)
                session.trees[partition_id] = tree
                roots[partition_id] = tree.root_digest
            size = (len(roots) * (DIGEST_BYTES + 1)
                    + self.cluster.request_overhead_bytes)
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=peer_id,
                msg_type=MessageType.MERKLE_PARTITION_DIGESTS,
                payload={"session": session_id, "roots": roots},
                size_bytes=size,
            ))
            return

        tree = self._merkle_tree()
        session.trees[None] = tree
        session.open_partitions.add(None)
        self._send_merkle_level(session_id, peer_id, 0, [((), tree.root_digest)])

    def _on_merkle_partition_digests(self, message: Message) -> None:
        """Target side: compare per-range roots, name the differing ranges."""
        session_id = message.payload["session"]
        roots = message.payload["roots"]
        index = self.node.merkle_index
        stats = self.cluster.merkle_stats

        # A new exchange from this peer supersedes any cached range trees
        # left over from an older, possibly abandoned one.
        for cache_key in [cache_key for cache_key in self._merkle_peer_trees
                          if cache_key[0] == message.sender]:
            del self._merkle_peer_trees[cache_key]

        local_live = {partition_id for partition_id in index.partition_ids()
                      if index.index_for(partition_id).key_count > 0}
        compared = sorted(local_live | set(roots))
        differing: List[int] = []
        empty_root = index.empty_root_digest
        for partition_id in compared:
            remote_root = roots.get(partition_id, empty_root)
            if index.partition_root(partition_id) != remote_root:
                differing.append(partition_id)
                # Freeze this range's tree now so every level of the coming
                # descent compares against the same digests.
                self._merkle_peer_trees[(message.sender, partition_id)] = (
                    session_id, index.snapshot_partition(partition_id))
        stats.partitions_compared += len(compared)
        stats.partitions_differing += len(differing)

        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.MERKLE_PARTITION_DIFF,
            payload={"session": session_id, "differing": differing},
            size_bytes=len(differing) + self.cluster.request_overhead_bytes,
        ))

    def _on_merkle_partition_diff(self, message: Message) -> None:
        """Source side: descend each differing range; finish if none differ."""
        session_id = message.payload["session"]
        session = self._merkle_sessions.get(session_id)
        if session is None or session.peer_id != message.sender:
            return  # stale session (lost messages, duplicate delivery)
        differing = message.payload["differing"]
        if not differing:
            self._merkle_sessions.pop(session_id, None)
            self.cluster.merkle_stats.exchanges_clean += 1
            return
        for partition_id in differing:
            tree = session.trees.get(partition_id)
            if tree is None:
                # The peer holds keys in a range we have nothing for — descend
                # with the empty tree so its leaf fingerprints localise them.
                tree = MerkleTree({}, fanout=self.cluster.merkle_fanout,
                                  depth=self.cluster.merkle_depth)
                session.trees[partition_id] = tree
            session.open_partitions.add(partition_id)
        # The roots already differ (that is what the peer told us), so the
        # descent of each range starts at its children.
        for partition_id in differing:
            tree = session.trees[partition_id]
            self._send_merkle_level(session_id, session.peer_id, 1,
                                    tree.child_digests(()),
                                    partition=partition_id)

    def _send_merkle_level(self,
                           session_id: int,
                           peer_id: str,
                           level: int,
                           entries: List[Tuple[Tuple[int, ...], bytes]],
                           partition: Optional[int] = None) -> None:
        self.cluster.merkle_stats.levels_sent += 1
        size = (len(entries) * (DIGEST_BYTES + max(level, 1))
                + self.cluster.request_overhead_bytes)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=peer_id,
            msg_type=MessageType.MERKLE_SYNC_REQUEST,
            payload={"session": session_id, "level": level, "entries": entries,
                     "partition": partition},
            size_bytes=size,
        ))

    def _on_merkle_sync_request(self, message: Message) -> None:
        """Target side: compare received digests against the local tree."""
        session_id = message.payload["session"]
        level = message.payload["level"]
        entries = message.payload["entries"]
        partition = message.payload.get("partition")

        cache_key = (message.sender, partition)
        cached = self._merkle_peer_trees.get(cache_key)
        if cached is None or cached[0] != session_id:
            # First message of this session for this range (or an earlier
            # message was lost and a deeper one arrived) — snapshot a fresh
            # tree for it.
            tree = self._merkle_tree(partition)
            self._merkle_peer_trees[cache_key] = (session_id, tree)
        else:
            tree = cached[1]

        differing = [tuple(path) for path, digest in entries
                     if tree.digest_at(path) != digest]
        at_leaves = level >= tree.depth
        buckets: Optional[Dict[Tuple[int, ...], Dict[str, bytes]]] = None
        size = len(differing) * (level + 1) + self.cluster.request_overhead_bytes
        if at_leaves and differing:
            buckets = {path: tree.bucket_fingerprints(path) for path in differing}
            size += sum(len(key.encode("utf-8")) + DIGEST_BYTES
                        for bucket in buckets.values() for key in bucket)
        if at_leaves or not differing:
            # This range's descent either finishes here or moves on to key
            # states, neither of which needs the cached tree snapshot any more.
            self._merkle_peer_trees.pop(cache_key, None)

        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.MERKLE_SYNC_RESPONSE,
            payload={"session": session_id, "level": level,
                     "differing": differing, "buckets": buckets,
                     "partition": partition},
            size_bytes=size,
        ))

    def _finish_merkle_partition(self,
                                 session_id: int,
                                 session: _MerkleSession,
                                 partition: Optional[int]) -> None:
        """One range's descent is done; the session ends with its last range."""
        session.open_partitions.discard(partition)
        if not session.open_partitions:
            self._merkle_sessions.pop(session_id, None)

    def _on_merkle_sync_response(self, message: Message) -> None:
        """Source side: descend into differing paths or ship divergent keys."""
        session_id = message.payload["session"]
        session = self._merkle_sessions.get(session_id)
        if session is None or session.peer_id != message.sender:
            return  # stale session (lost messages, duplicate delivery)
        differing = message.payload["differing"]
        level = message.payload["level"]
        partition = message.payload.get("partition")
        tree = session.trees.get(partition)
        if tree is None:
            return  # stale range (superseded session id reuse)

        if not differing:
            if partition is None and level == 0:
                # Legacy single-tree protocol: matching roots end the whole
                # exchange cleanly.
                self.cluster.merkle_stats.exchanges_clean += 1
            self._finish_merkle_partition(session_id, session, partition)
            return

        buckets = message.payload.get("buckets")
        if buckets is None:
            # Descend one level: ship child digests of every differing path.
            entries: List[Tuple[Tuple[int, ...], bytes]] = []
            for path in differing:
                entries.extend(tree.child_digests(path))
            self._send_merkle_level(session_id, session.peer_id, level + 1,
                                    entries, partition=partition)
            return

        # Leaf level: fingerprints localise the exact divergent keys.
        divergent: List[str] = []
        for path, peer_fingerprints in buckets.items():
            own_fingerprints = tree.bucket_fingerprints(tuple(path))
            for key in sorted(set(own_fingerprints) | set(peer_fingerprints)):
                if own_fingerprints.get(key) != peer_fingerprints.get(key):
                    divergent.append(key)
        peer_id = session.peer_id
        self._finish_merkle_partition(session_id, session, partition)
        self._send_merkle_key_states(peer_id, sorted(set(divergent)))

    def _send_merkle_key_states(self, peer_id: str, keys: Sequence[str],
                                want_reply: bool = True) -> None:
        """Ship states for the divergent keys, batched to amortise latency."""
        for chunk in _chunked(list(keys), self.cluster.sync_batch_size):
            states = {key: self.node.state_of(key) for key in chunk
                      if self.node.storage.has_key(key)}
            want = list(chunk) if want_reply else []
            size = (sum(self._payload_state_size(key, state)
                        for key, state in states.items())
                    + sum(len(key.encode("utf-8")) for key in want)
                    + self.cluster.request_overhead_bytes)
            self.cluster.merkle_stats.keys_transferred += len(states)
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=peer_id,
                msg_type=MessageType.MERKLE_KEY_STATES,
                payload={"states": states, "want": want},
                size_bytes=size,
            ))

    def _on_merkle_key_states(self, message: Message) -> None:
        for key, state in message.payload["states"].items():
            self.node.local_merge(key, state, reason="merkle")
        want = message.payload.get("want") or []
        if want:
            # Reply with the (now merged) local states so both sides converge
            # in a single exchange.
            self._send_merkle_key_states(message.sender, want, want_reply=False)

    # ------------------------------------------------------------------ #
    # Hinted handoff
    # ------------------------------------------------------------------ #
    def replay_hints(self) -> int:
        """Send HINT_REPLAY batches for every reachable hint target.

        Returns the number of batches sent.  Hints are only cleared when the
        target acknowledges, so lost replays are retried on a later tick;
        merges are idempotent, so re-sent hints are harmless.
        """
        batches = 0
        for target_id in self.node.hint_targets():
            if not self.cluster.can_reach(self.node_id, target_id):
                continue
            hints = self.node.hints_for(target_id)
            for chunk in _chunked(hints, self.cluster.sync_batch_size):
                payload_hints = [(hint.hint_id, hint.key, hint.state) for hint in chunk]
                size = (sum(self._payload_state_size(hint.key, hint.state)
                            for hint in chunk)
                        + self.cluster.request_overhead_bytes)
                self.cluster.transport.send(Message(
                    sender=self.node_id,
                    receiver=target_id,
                    msg_type=MessageType.HINT_REPLAY,
                    payload={"hints": payload_hints},
                    size_bytes=size,
                ))
                batches += 1
        return batches

    def _on_hint_replay(self, message: Message) -> None:
        hint_ids = []
        for hint_id, key, state in message.payload["hints"]:
            self.node.local_merge(key, state, reason="hint")
            hint_ids.append(hint_id)
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=message.sender,
            msg_type=MessageType.HINT_ACK,
            payload={"hint_ids": hint_ids},
            size_bytes=self.cluster.request_overhead_bytes,
        ))

    def _on_hint_ack(self, message: Message) -> None:
        self.node.clear_hints(message.sender, message.payload["hint_ids"])

    # ------------------------------------------------------------------ #
    # Rebalancing handoff (join / decommission)
    # ------------------------------------------------------------------ #
    def send_key_handoff(self, target_id: str, keys: Sequence[str]) -> None:
        """Push the states of ``keys`` to a node that became a replica home.

        When this node maintains an incremental index, each shipped key rides
        with the fingerprint its range tree already holds, so the receiver
        can adopt the digest instead of re-hashing the state
        (:meth:`StorageNode.ingest_handoff`): moving a vnode's worth of keys
        costs O(1) fresh fingerprints on both sides, not O(keys moved).
        """
        held = [key for key in keys if self.node.storage.has_key(key)]
        index = self.node.merkle_index
        for chunk in _chunked(held, self.cluster.sync_batch_size):
            states = {key: self.node.state_of(key) for key in chunk}
            fingerprints: Dict[str, bytes] = {}
            if index is not None:
                for key in chunk:
                    fingerprint = index.fingerprint(key)
                    if fingerprint is not None:
                        fingerprints[key] = fingerprint
            size = (sum(self._payload_state_size(key, state)
                        for key, state in states.items())
                    + len(fingerprints) * DIGEST_BYTES
                    + self.cluster.request_overhead_bytes)
            self.cluster.transport.send(Message(
                sender=self.node_id,
                receiver=target_id,
                msg_type=MessageType.KEY_HANDOFF,
                payload={"states": states, "fingerprints": fingerprints},
                size_bytes=size,
            ))

    def _on_key_handoff(self, message: Message) -> None:
        fingerprints = message.payload.get("fingerprints") or {}
        for key, state in message.payload["states"].items():
            self.node.ingest_handoff(key, state, fingerprints.get(key))

    def _on_ping(self, message: Message) -> None:
        self.cluster.transport.send(message.reply(MessageType.PONG))

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def on_recover(self, wipe: bool,
                   wipe_partitions: Optional[Sequence[int]] = None) -> None:
        """Recover from a crash: disk handling plus process-memory cleanup.

        The disk either survived (restart: the Merkle index is rebuilt from
        it, per non-empty vnode), did not (``wipe``: storage and index are
        emptied), or lost only some vnodes' slices (``wipe_partitions``: those
        ranges' states, hints and trees are dropped, the rest survive and
        keep their maintained digests).  Process memory died either way:
        queued read-repair pushes, in-flight Merkle exchange snapshots and
        the replica-latency EWMAs are discarded here — any new process state
        added to MessageServer that should not survive a crash belongs in
        this method.
        """
        if wipe:
            self.node.wipe()
        else:
            for partition_id in wipe_partitions or ():
                self.node.wipe(partition=partition_id)
            self.node.restart()
        self._repair_queue.clear()
        self._merkle_sessions.clear()
        self._merkle_peer_trees.clear()
        self._ack_latency_ewma.clear()

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def start_sync_with(self, peer_id: str) -> None:
        """Begin a full-state anti-entropy exchange with ``peer_id`` (push-pull)."""
        states = {key: self.node.state_of(key) for key in self.node.storage.keys()}
        self.cluster.transport.send(Message(
            sender=self.node_id,
            receiver=peer_id,
            msg_type=MessageType.SYNC_REQUEST,
            payload={"states": states},
            size_bytes=sum(self._state_size(k, s) for k, s in states.items()),
        ))

    def _state_size(self, key: str, state: Any) -> int:
        return self._payload_state_size(key, state) + self.cluster.request_overhead_bytes

    def _payload_state_size(self, key: str, state: Any) -> int:
        metadata = self.mechanism.metadata_bytes(state)
        values = sum(default_value_size(s.value) for s in self.mechanism.siblings(state))
        return metadata + values


class SimulatedClient:
    """A client node of the simulated cluster.

    The client keeps a :class:`~repro.kvstore.client.ClientSession` for causal
    bookkeeping and records a :class:`RequestRecord` for every completed
    request.  Requests are asynchronous: callers pass a callback that receives
    the :class:`GetResult` / :class:`PutResult` when the reply arrives.
    """

    def __init__(self, client_id: str, cluster: "SimulatedCluster") -> None:
        self.client_id = client_id
        self.address = f"client:{client_id}"
        self.cluster = cluster
        self.session = ClientSession(client_id)
        self.records: List[RequestRecord] = []
        self._callbacks: Dict[int, Callable] = {}
        self._started: Dict[int, float] = {}
        self._operations: Dict[int, Dict[str, Any]] = {}
        self._deadlines: Dict[int, Any] = {}

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def handle_message(self, message: Message) -> None:
        """Transport entry point (replies from coordinators)."""
        if message.msg_type is MessageType.GET_REPLY:
            self._on_get_reply(message)
        elif message.msg_type is MessageType.PUT_REPLY:
            self._on_put_reply(message)
        elif message.msg_type is MessageType.ERROR_REPLY:
            self._on_error_reply(message)

    # ------------------------------------------------------------------ #
    # Issuing requests
    # ------------------------------------------------------------------ #
    def get(self, key: str, callback: Optional[Callable[[GetResult], None]] = None) -> None:
        """Issue a GET for ``key``; ``callback`` fires when the reply arrives.

        In async request mode a failed request (coordinator candidates
        exhausted, or an ``ERROR_REPLY``) invokes the callback with ``None``
        and records an ``ok=False`` :class:`RequestRecord`.
        """
        self._issue(MessageType.COORDINATE_GET, "get", key,
                    payload={"key": key},
                    size_bytes=self.cluster.request_overhead_bytes,
                    callback=callback)

    def put(self,
            key: str,
            value: Any,
            callback: Optional[Callable[[PutResult], None]] = None,
            use_context: bool = True) -> None:
        """Issue a PUT for ``key``; ``callback`` fires when the reply arrives."""
        context = self.session.last_context(key) if use_context else None
        sibling = self.session.prepare_write(key, value, context)
        context_bytes = (
            self.cluster.mechanism.context_bytes(context.mechanism_context)
            if context is not None else 0
        )
        self._issue(MessageType.COORDINATE_PUT, "put", key,
                    payload={
                        "key": key,
                        "sibling": sibling,
                        "context": context,
                        "client_id": self.client_id,
                    },
                    size_bytes=default_value_size(value) + context_bytes
                    + self.cluster.request_overhead_bytes,
                    callback=callback)

    def _issue(self, msg_type: MessageType, operation: str, key: str,
               payload: Dict[str, Any], size_bytes: int,
               callback: Optional[Callable]) -> None:
        """Send a request to the first coordinator candidate.

        In membership mode the single candidate is the placement service's
        coordinator (first *active* replica).  In async mode the candidate
        list is the full extended preference list, walked with a client-side
        deadline per attempt: an unresponsive coordinator is failed over, and
        exhausting the list records the request as failed.
        """
        if self.cluster.request_mode == "async":
            candidates = self.cluster.placement.extended_preference_list(key)
        else:
            candidates = [self.cluster.placement.coordinator_for(key)]
        message = Message(
            sender=self.address,
            receiver=candidates[0],
            msg_type=msg_type,
            payload=payload,
            size_bytes=size_bytes,
        )
        self._register(message, operation, key, callback)
        self._operations[message.msg_id].update({
            "candidates": candidates,
            "attempt": 0,
            "msg_type": msg_type,
            "payload": payload,
            "size_bytes": size_bytes,
        })
        if self.cluster.request_mode == "async":
            self._arm_client_deadline(message.msg_id)
        self.cluster.transport.send(message)

    def _register(self, message: Message, operation: str, key: str,
                  callback: Optional[Callable]) -> None:
        self._callbacks[message.msg_id] = callback
        self._started[message.msg_id] = self.cluster.simulation.now
        self._operations[message.msg_id] = {"operation": operation, "key": key}

    def _arm_client_deadline(self, request_id: int) -> None:
        self._deadlines[request_id] = self.cluster.transport.schedule_deadline(
            self.cluster.client_timeout_ms,
            lambda: self._on_client_deadline(request_id),
            label=f"client-deadline:{self.client_id}",
        )

    def _on_client_deadline(self, request_id: int) -> None:
        """No reply at all: fail over to the next candidate, or give up."""
        info = self._operations.get(request_id)
        self._deadlines.pop(request_id, None)
        if info is None:
            return  # a reply won the race
        attempt = info["attempt"] + 1
        candidates = info["candidates"]
        if attempt >= len(candidates):
            self._finish_failed(request_id, reason="timeout")
            return
        # Re-send the same logical request (same payload/sibling) to the next
        # candidate coordinator.  At-least-once caveat: if the silent
        # coordinator actually applied the put and only its reply was lost,
        # the retry's coordinator mints a second server-side dot over the
        # same causal past, and the value can survive as a duplicate sibling
        # — the standard Dynamo client-retry trade-off; nothing is lost.
        self._operations.pop(request_id, None)
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.cluster.simulation.now)
        message = Message(
            sender=self.address,
            receiver=candidates[attempt],
            msg_type=info["msg_type"],
            payload=info["payload"],
            size_bytes=info["size_bytes"],
        )
        self._callbacks[message.msg_id] = callback
        self._started[message.msg_id] = started
        retried = dict(info)
        retried["attempt"] = attempt
        self._operations[message.msg_id] = retried
        self._arm_client_deadline(message.msg_id)
        self.cluster.transport.send(message)

    def _finish_failed(self, request_id: int, reason: str, coordinator: str = "") -> None:
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.cluster.simulation.now)
        self.cluster.transport.cancel_deadline(self._deadlines.pop(request_id, None))
        self.records.append(RequestRecord(
            operation=info["operation"],
            key=info["key"],
            client_id=self.client_id,
            started_at=started,
            finished_at=self.cluster.simulation.now,
            ok=False,
            coordinator=coordinator,
            error=reason,
        ))
        if callback is not None:
            callback(None)

    def _on_error_reply(self, message: Message) -> None:
        """The coordinator gave up (quorum infeasible / request deadline)."""
        self._finish_failed(
            message.request_id,
            reason=message.payload.get("reason", "error"),
            coordinator=message.payload.get("coordinator", ""),
        )

    # ------------------------------------------------------------------ #
    # Handling replies
    # ------------------------------------------------------------------ #
    def _on_get_reply(self, message: Message) -> None:
        request_id = message.request_id
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        self.cluster.transport.cancel_deadline(self._deadlines.pop(request_id, None))
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.cluster.simulation.now)
        key = message.payload["key"]
        siblings = message.payload["siblings"]

        read = _SyntheticRead(siblings, message.payload["mechanism_context"])
        context = self.session.absorb_read(key, read, self.cluster.mechanism.name)
        result = GetResult(
            key=key,
            values=[s.value for s in siblings],
            siblings=list(siblings),
            context=context,
        )
        self.records.append(RequestRecord(
            operation="get",
            key=key,
            client_id=self.client_id,
            started_at=started,
            finished_at=self.cluster.simulation.now,
            ok=True,
            coordinator=message.payload["coordinator"],
            sibling_count=len(siblings),
            context_bytes=message.payload.get("context_bytes", 0),
        ))
        if callback is not None:
            callback(result)

    def _on_put_reply(self, message: Message) -> None:
        request_id = message.request_id
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        self.cluster.transport.cancel_deadline(self._deadlines.pop(request_id, None))
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.cluster.simulation.now)
        key = message.payload["key"]

        # The put reply carries the post-write context (Riak's "return body"
        # mode); absorbing it keeps the session able to chain further writes.
        read = _SyntheticRead(message.payload["siblings"], message.payload["mechanism_context"])
        context = self.session.absorb_read(key, read, self.cluster.mechanism.name)
        result = PutResult(
            key=key,
            context=context,
            coordinator=message.payload["coordinator"],
            sibling=message.payload["sibling"],
        )
        self.records.append(RequestRecord(
            operation="put",
            key=key,
            client_id=self.client_id,
            started_at=started,
            finished_at=self.cluster.simulation.now,
            ok=True,
            coordinator=message.payload["coordinator"],
            sibling_count=len(message.payload["siblings"]),
            context_bytes=message.payload.get("context_bytes", 0),
        ))
        if callback is not None:
            callback(result)


class _SyntheticRead:
    """Adapter giving :meth:`ClientSession.absorb_read` the shape it expects."""

    def __init__(self, siblings: Sequence[Sibling], context: Any) -> None:
        self.siblings = list(siblings)
        self.context = context


class SimulatedCluster:
    """A complete simulated deployment: servers, clients, ring, transport.

    Parameters
    ----------
    mechanism:
        Causality mechanism shared by all servers in this run.
    server_ids:
        Physical storage nodes.
    quorum:
        N / R / W configuration.
    latency:
        Latency model; defaults to a size-dependent model so metadata size
        shows up in request latency (experiment E4).
    seed:
        Simulation seed (drives latency sampling and message loss).
    loss_probability / duplicate_probability:
        Transport unreliability knobs.
    anti_entropy_interval_ms:
        Period of the background replica synchronisation (None disables it).
    anti_entropy_strategy:
        ``"merkle"`` (default) for the Merkle-delta exchange, ``"full"`` for
        the original all-keys state exchange.
    hint_replay_interval_ms:
        Period of the hinted-handoff replay daemon (None disables hinted
        handoff entirely — no hints are stored).
    request_mode:
        ``"membership"`` (default) — coordinators consult the membership
        view's failure detector; ``"async"`` — coordinators fan out with
        per-replica deadlines and, under a sloppy quorum, extend to fallback
        nodes that hold hints for timed-out primaries.
    replica_timeout_ms / request_timeout_ms:
        Async mode deadlines: how long a coordinator waits for one replica's
        ack before extending/abandoning it, and how long a whole request may
        take before the coordinator answers ``ERROR_REPLY``.  Clients wait
        ``client_timeout_ms`` (1.5 × the request timeout by default) before
        failing over to the next candidate coordinator.
    sync_batch_size:
        Keys per MERKLE_KEY_STATES / HINT_REPLAY / KEY_HANDOFF message (also
        the read-repair batch size).
    merkle_fanout / merkle_depth:
        Shape of the hash trees used by the Merkle-delta exchange.
    merkle_maintenance:
        ``"incremental"`` (default) — every server carries a write-maintained
        :class:`~repro.kvstore.merkle_index.MerkleIndex` and exchanges take
        cheap digest snapshots; ``"rebuild"`` — the pre-index behaviour of
        re-hashing the whole key space per exchange, kept for the
        maintenance-cost ablation.
    read_repair_batch_ms:
        Coalescing window for read-repair pushes: repairs destined for the
        same stale replica within this window ride one READ_REPAIR message
        (a full ``sync_batch_size`` batch flushes immediately; ``0`` disables
        coalescing and sends each repair at once).
    deadline_mode:
        Async-mode per-replica deadlines: ``"fixed"`` (default) arms
        ``replica_timeout_ms`` for every replica; ``"adaptive"`` arms an EWMA
        of the replica's observed ack latency scaled by
        :data:`ADAPTIVE_DEADLINE_MULTIPLIER` and clamped to
        [``deadline_floor_ms``, ``deadline_ceiling_ms``].
    deadline_floor_ms / deadline_ceiling_ms:
        Clamp for adaptive deadlines.  The ceiling defaults to
        ``replica_timeout_ms`` so adaptation only ever tightens failure
        detection; the floor keeps a single latency spike from mass-expiring
        healthy replicas.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 server_ids: Sequence[str] = ("A", "B", "C"),
                 quorum: Optional[QuorumConfig] = None,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 loss_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 anti_entropy_interval_ms: Optional[float] = 100.0,
                 anti_entropy_strategy: str = "merkle",
                 hint_replay_interval_ms: Optional[float] = 50.0,
                 request_mode: str = "membership",
                 replica_timeout_ms: float = 10.0,
                 request_timeout_ms: float = 50.0,
                 client_timeout_ms: Optional[float] = None,
                 sync_batch_size: int = 16,
                 merkle_fanout: int = 16,
                 merkle_depth: int = 2,
                 merkle_maintenance: str = "incremental",
                 read_repair_batch_ms: float = 2.0,
                 deadline_mode: str = "fixed",
                 deadline_floor_ms: float = 2.0,
                 deadline_ceiling_ms: Optional[float] = None,
                 virtual_nodes: int = 32,
                 partition_count: int = DEFAULT_PARTITION_COUNT,
                 request_overhead_bytes: int = 64) -> None:
        if not server_ids:
            raise ConfigurationError("at least one server id is required")
        if anti_entropy_strategy not in ANTI_ENTROPY_STRATEGIES:
            raise ConfigurationError(
                f"unknown anti-entropy strategy {anti_entropy_strategy!r}; "
                f"choose from {ANTI_ENTROPY_STRATEGIES}"
            )
        if request_mode not in REQUEST_MODES:
            raise ConfigurationError(
                f"unknown request mode {request_mode!r}; choose from {REQUEST_MODES}"
            )
        if merkle_maintenance not in MERKLE_MAINTENANCE_MODES:
            raise ConfigurationError(
                f"unknown merkle maintenance mode {merkle_maintenance!r}; "
                f"choose from {MERKLE_MAINTENANCE_MODES}"
            )
        if deadline_mode not in DEADLINE_MODES:
            raise ConfigurationError(
                f"unknown deadline mode {deadline_mode!r}; choose from {DEADLINE_MODES}"
            )
        if replica_timeout_ms <= 0 or request_timeout_ms <= 0:
            raise ConfigurationError("async timeouts must be positive")
        if read_repair_batch_ms < 0:
            raise ConfigurationError(
                f"read_repair_batch_ms must be >= 0, got {read_repair_batch_ms}"
            )
        if deadline_floor_ms <= 0:
            raise ConfigurationError(
                f"deadline_floor_ms must be positive, got {deadline_floor_ms}"
            )
        resolved_ceiling = (deadline_ceiling_ms if deadline_ceiling_ms is not None
                            else replica_timeout_ms)
        if resolved_ceiling < deadline_floor_ms:
            raise ConfigurationError(
                f"deadline_ceiling_ms ({resolved_ceiling}) must be >= "
                f"deadline_floor_ms ({deadline_floor_ms})"
            )
        if sync_batch_size < 1:
            raise ConfigurationError(f"sync_batch_size must be >= 1, got {sync_batch_size}")
        self.mechanism = mechanism
        self.quorum = quorum or QuorumConfig(n=min(3, len(server_ids)),
                                             r=min(2, len(server_ids)),
                                             w=min(2, len(server_ids)))
        self.simulation = Simulation(seed=seed)
        self.partitions = PartitionManager()
        self.transport = Transport(
            self.simulation,
            latency=latency or SizeDependentLatency(),
            loss_probability=loss_probability,
            duplicate_probability=duplicate_probability,
            partitions=self.partitions,
        )
        self.ring = ConsistentHashRing(server_ids, virtual_nodes=virtual_nodes)
        self.membership = Membership(server_ids)
        # The cluster-wide range ↔ vnode mapping: every server divides its
        # key space into the same fixed partitions, so per-range digests are
        # comparable between peers and handoff can move whole ranges.
        self.partition_map = PartitionMap(partition_count)
        self.placement = PlacementService(self.ring, self.membership,
                                          self.quorum,
                                          partition_map=self.partition_map)
        self.write_log = WriteLog()
        self.request_overhead_bytes = request_overhead_bytes
        self.request_mode = request_mode
        self.replica_timeout_ms = replica_timeout_ms
        self.request_timeout_ms = request_timeout_ms
        self.client_timeout_ms = (client_timeout_ms if client_timeout_ms is not None
                                  else request_timeout_ms * 1.5)
        self.anti_entropy_strategy = anti_entropy_strategy
        self.sync_batch_size = sync_batch_size
        self.merkle_fanout = merkle_fanout
        self.merkle_depth = merkle_depth
        self.merkle_maintenance = merkle_maintenance
        self.read_repair_batch_ms = read_repair_batch_ms
        self.deadline_mode = deadline_mode
        self.deadline_floor_ms = deadline_floor_ms
        self.deadline_ceiling_ms = resolved_ceiling
        self.merkle_stats = MerkleSyncStats()
        self._anti_entropy_interval_ms = anti_entropy_interval_ms
        self._departed_stats: Dict[str, int] = {}

        self.servers: Dict[str, MessageServer] = {}
        for server_id in server_ids:
            server = MessageServer(server_id, mechanism, self)
            self.servers[server_id] = server
            self.transport.register(server_id, server.handle_message)

        self.clients: Dict[str, SimulatedClient] = {}
        self.anti_entropy: Optional[AntiEntropyDaemon] = None
        if anti_entropy_interval_ms is not None and len(server_ids) > 1:
            self.anti_entropy = AntiEntropyDaemon(
                self.simulation,
                self._trigger_sync,
                list(server_ids),
                interval_ms=anti_entropy_interval_ms,
                eligible=self.membership.is_up,
            )
        self.hinted_handoff: Optional[HintedHandoffDaemon] = None
        if hint_replay_interval_ms is not None:
            self.hinted_handoff = HintedHandoffDaemon(
                self.simulation,
                sources=self._hint_sources,
                trigger_replay=self._trigger_hint_replay,
                interval_ms=hint_replay_interval_ms,
            )
        # Nudge hint replay as soon as a node recovers rather than waiting
        # for the next daemon tick.
        self.membership.subscribe(self._on_membership_event)

    @property
    def hinted_handoff_enabled(self) -> bool:
        """Whether coordinators store hints for unreachable primaries."""
        return self.hinted_handoff is not None

    # ------------------------------------------------------------------ #
    # Topology management
    # ------------------------------------------------------------------ #
    def client(self, client_id: str) -> SimulatedClient:
        """Create (or return) the client node with the given id."""
        if client_id in self.clients:
            return self.clients[client_id]
        client = SimulatedClient(client_id, self)
        self.clients[client_id] = client
        self.transport.register(client.address, client.handle_message)
        return client

    def _trigger_sync(self, source_id: str, target_id: str) -> None:
        self.start_exchange(source_id, target_id)

    def start_exchange(self, source_id: str, target_id: str,
                       strategy: Optional[str] = None) -> None:
        """Start one anti-entropy exchange using the configured strategy."""
        source = self.servers.get(source_id)
        if source is None:
            return
        if (strategy or self.anti_entropy_strategy) == "full":
            source.start_sync_with(target_id)
        else:
            source.start_merkle_sync_with(target_id)

    def _hint_sources(self) -> List[str]:
        return [server_id for server_id, server in sorted(self.servers.items())
                if server.node.pending_hints() > 0
                and self.membership.is_up(server_id)]

    def _trigger_hint_replay(self, server_id: str) -> int:
        server = self.servers.get(server_id)
        return server.replay_hints() if server is not None else 0

    def _on_membership_event(self, node_id: str, event: str) -> None:
        if event != "up" or self.hinted_handoff is None:
            return
        holders = [server_id for server_id, server in sorted(self.servers.items())
                   if node_id in server.node.hint_targets()]
        if holders:
            self.simulation.schedule(
                0.1,
                lambda: [self._trigger_hint_replay(server_id) for server_id in holders],
                label=f"hint-replay-nudge:{node_id}",
            )

    def fail_node(self, server_id: str) -> None:
        """Crash a server: it stops receiving messages and is marked down."""
        self.membership.mark_down(server_id)
        self.transport.unregister(server_id)

    def recover_node(self, server_id: str, wipe: bool = False,
                     wipe_partitions: Optional[Sequence[int]] = None) -> None:
        """Bring a crashed server back.

        With ``wipe=False`` the pre-crash state is retained (process restart)
        — including any hints the node was holding for others, which are
        persisted in the storage layer and resume replaying; with
        ``wipe=True`` the node rejoins with empty storage (disk loss), losing
        both its key states and its held hints, and must be repopulated by
        other nodes' hint replays and anti-entropy.  ``wipe_partitions``
        models a partial disk loss: only the named vnodes' key states (and
        the hints for keys in those ranges) are dropped, the other vnodes
        survive the crash intact.

        The incremental Merkle index follows the disk's fate either way: a
        restart rebuilds it from the surviving storage (the in-memory trees
        died with the process; only vnodes that still hold keys pay a
        rebuild), a wipe empties it alongside the key states.
        """
        server = self.servers[server_id]
        server.on_recover(wipe, wipe_partitions=wipe_partitions)
        if not self.transport.is_registered(server_id):
            self.transport.register(server_id, server.handle_message)
        self.membership.mark_up(server_id)

    def join_node(self, server_id: str) -> int:
        """Add a new (empty) server to the running cluster.

        The ring is rebalanced and, for every key whose preference list now
        includes the newcomer, one current holder pushes the key's state via
        KEY_HANDOFF.  Returns the number of keys scheduled for handoff.
        """
        if server_id in self.servers:
            raise ConfigurationError(f"server {server_id!r} already in the cluster")
        ring_before = ConsistentHashRing(self.ring.nodes(),
                                         virtual_nodes=self.ring.virtual_nodes)
        self.ring.add_node(server_id)
        self.membership.add(server_id)
        server = MessageServer(server_id, self.mechanism, self)
        self.servers[server_id] = server
        self.transport.register(server_id, server.handle_message)
        if self.anti_entropy is not None:
            self.anti_entropy.add_node(server_id)
        elif self._anti_entropy_interval_ms is not None and len(self.servers) > 1:
            self.anti_entropy = AntiEntropyDaemon(
                self.simulation,
                self._trigger_sync,
                list(self.servers),
                interval_ms=self._anti_entropy_interval_ms,
                eligible=self.membership.is_up,
            )

        moves = rebalance_plan(ring_before, self.ring,
                               self.key_universe(), self.quorum.n)
        batches: Dict[Tuple[str, str], List[str]] = {}
        for move in moves:
            gained = [node for node in move.gained if node in self.servers]
            if not gained:
                continue
            # Only a live node can act as the handoff source — a crashed
            # replica's storage is unreachable until it recovers.
            holders = [node for node in move.owners_before
                       if node in self.servers and self.membership.is_up(node)
                       and self.servers[node].node.storage.has_key(move.key)]
            if not holders:  # key held off its preference list (e.g. post-churn)
                holders = [node for node, srv in sorted(self.servers.items())
                           if self.membership.is_up(node)
                           and srv.node.storage.has_key(move.key)]
            if not holders:
                continue
            for target in gained:
                batches.setdefault((holders[0], target), []).append(move.key)
        handed_off = 0
        for (source_id, target_id), keys in sorted(batches.items()):
            self.servers[source_id].send_key_handoff(target_id, keys)
            handed_off += len(keys)
        return handed_off

    def decommission_node(self, server_id: str) -> int:
        """Gracefully remove a server from the running cluster.

        Before leaving, the node pushes each of its keys to the key's replica
        homes on the shrunk ring, so no singly-replicated state is lost.
        Returns the number of key states pushed.
        """
        if server_id not in self.servers:
            raise ConfigurationError(f"unknown server {server_id!r}")
        server = self.servers[server_id]
        self.ring.remove_node(server_id)

        # A graceful leave pushes the node's keys to their remaining replica
        # homes — but only a live node can do that; removing a crashed node
        # just drops it (its data is whatever already replicated elsewhere).
        handed_off = 0
        if self.membership.is_up(server_id):
            batches: Dict[str, List[str]] = {}
            for key in server.node.storage.keys():
                reachable = [target
                             for target in self.ring.preference_list(key, self.quorum.n)
                             if target != server_id and target in self.servers
                             and self.can_reach(server_id, target)]
                if not reachable:
                    # Handing off into a partition would silently drop the
                    # key's (possibly only) copy; refuse the graceful leave.
                    self.ring.add_node(server_id)
                    raise ConfigurationError(
                        f"cannot decommission {server_id!r}: no reachable "
                        f"replica home for key {key!r}"
                    )
                for target in reachable:
                    batches.setdefault(target, []).append(key)
            for target_id, keys in sorted(batches.items()):
                server.send_key_handoff(target_id, keys)
                handed_off += len(keys)

        self.membership.remove(server_id)
        if self.anti_entropy is not None:
            self.anti_entropy.remove_node(server_id)
        self.servers.pop(server_id)
        self.transport.unregister(server_id)
        # Stats of the departed node still belong to the run's totals.
        for name, value in server.node.stats.items():
            self._departed_stats[name] = self._departed_stats.get(name, 0) + value
        # Hints destined for the removed node can never be replayed; purge
        # them everywhere so they don't sit in the pending counts forever.
        for remaining in self.servers.values():
            remaining.node.clear_hints(server_id)
        return handed_off

    def can_reach(self, source_id: str, target_id: str) -> bool:
        """Whether ``source_id`` can currently deliver messages to ``target_id``.

        This is the coordinator's failure-detector view: a node is unreachable
        when it is marked down, deregistered from the transport, or cut off by
        a partition.
        """
        return (self.membership.is_up(target_id)
                and self.transport.is_registered(target_id)
                and self.partitions.can_communicate(source_id, target_id))

    # ------------------------------------------------------------------ #
    # Execution helpers
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Advance the simulation (delegates to :meth:`Simulation.run`)."""
        self.simulation.run(until=until, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> None:
        """Stop background daemons and run every outstanding event."""
        if self.anti_entropy is not None:
            self.anti_entropy.stop()
        if self.hinted_handoff is not None:
            self.hinted_handoff.stop()
        self.simulation.run_until_idle(max_events=max_events)

    def run_anti_entropy_round(self, strategy: Optional[str] = None,
                               settle: bool = True) -> None:
        """Start one exchange for every reachable server pair, then settle.

        Used by tests and scenarios to force convergence deterministically
        after the background daemons have been stopped.
        """
        server_ids = sorted(self.servers)
        for i, source_id in enumerate(server_ids):
            for target_id in server_ids[i + 1:]:
                if (self.membership.is_up(source_id)
                        and self.can_reach(source_id, target_id)):
                    self.start_exchange(source_id, target_id, strategy)
        if settle:
            self.simulation.run_until_idle()

    def key_universe(self) -> List[str]:
        """Every key held by any live server, sorted."""
        keys = set()
        for server in self.servers.values():
            keys.update(server.node.storage.keys())
        return sorted(keys)

    def is_converged(self) -> bool:
        """True iff every server stores an identical sibling set for every key."""
        for key in self.key_universe():
            fingerprints = {key_fingerprint(server.node, key)
                            for server in self.servers.values()}
            if len(fingerprints) > 1:
                return False
        return True

    def converge(self, max_rounds: int = 30, strategy: Optional[str] = None) -> int:
        """Run anti-entropy rounds until every replica agrees; returns rounds.

        Stops the background daemons first (they are periodic tasks and would
        keep the event queue from ever going idle), then drives explicit
        all-pairs rounds — the deterministic "settle everything" helper tests
        and scenarios use after a workload finishes.
        """
        self.drain()
        if self.is_converged():
            return 0
        for round_number in range(1, max_rounds + 1):
            self.run_anti_entropy_round(strategy)
            if self.is_converged():
                return round_number
        raise ConfigurationError(f"cluster did not converge within {max_rounds} rounds")

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def all_request_records(self) -> List[RequestRecord]:
        """Every request completed by every client, in completion order."""
        records: List[RequestRecord] = []
        for client in self.clients.values():
            records.extend(client.records)
        records.sort(key=lambda record: record.finished_at)
        return records

    def metadata_entries(self) -> int:
        """Total causality-metadata entries stored across the cluster."""
        return sum(server.node.metadata_entries() for server in self.servers.values())

    def metadata_bytes(self) -> int:
        """Total causality-metadata bytes stored across the cluster."""
        return sum(server.node.metadata_bytes() for server in self.servers.values())

    def sync_bytes(self) -> int:
        """Total bytes sent so far on anti-entropy messages (either strategy)."""
        return self.transport.stats.bytes_for(*SYNC_MESSAGE_TYPES)

    def sibling_counts(self, key: str) -> Dict[str, int]:
        """Live sibling counts of ``key`` on every server."""
        return {
            server_id: len(server.node.siblings_of(key))
            for server_id, server in self.servers.items()
        }

    def stat_totals(self) -> Dict[str, int]:
        """Per-node operation counters summed across the cluster.

        Includes the counters of gracefully decommissioned nodes, so churn
        reports account for work done before a departure.
        """
        totals: Dict[str, int] = dict(self._departed_stats)
        for server in self.servers.values():
            for name, value in server.node.stats.items():
                totals[name] = totals.get(name, 0) + value
        totals["pending_hints"] = sum(server.node.pending_hints()
                                      for server in self.servers.values())
        return totals

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SimulatedCluster(mechanism={self.mechanism.name!r}, "
            f"servers={sorted(self.servers)}, clients={len(self.clients)})"
        )
