"""Merkle-tree assisted anti-entropy (Riak/Dynamo "hashtree exchange").

Exchanging the full state of every key on every anti-entropy round (as the
basic :class:`~repro.kvstore.anti_entropy.AntiEntropyScheduler` does) is
simple but wasteful: most keys agree most of the time.  Production systems —
including the Riak deployment the paper's evaluation modified — summarise each
replica's key space in a Merkle tree and exchange only the hashes, descending
into subtrees whose hashes differ and finally transferring only the keys that
actually diverge.

This module provides:

* :class:`MerkleTree` — a fixed-fanout hash tree over a key space, built from
  ``(key, fingerprint)`` pairs.  Fingerprints are derived from the ground-truth
  sibling identities (origin dots), so the tree is mechanism-independent and
  two replicas agree on a key's fingerprint exactly when they store the same
  sibling set.
* :func:`diff_keys` — the keys whose fingerprints differ between two trees
  (descending only into differing buckets).
* :class:`MerkleAntiEntropy` — a scheduler for the synchronous store that uses
  the tree diff to synchronise only divergent keys, and records how much
  transfer the tree saved (reported by the anti-entropy efficiency test).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import codec
from ..core.exceptions import ConfigurationError
from .server import StorageNode
from .sync_store import SyncReplicatedStore


def _hash_bytes(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()


def state_fingerprint(mechanism, state) -> bytes:
    """Fingerprint of one mechanism state's sibling set.

    Built from the sorted ground-truth origin dots of the live siblings, so
    two replicas have equal fingerprints iff they store the same versions —
    regardless of which causality mechanism produced them.  This is the unit
    of work the incremental index (:mod:`repro.kvstore.merkle_index`) pays
    once per mutation instead of once per key per tree rebuild.

    The digest is memoized per sorted dot tuple (in :mod:`repro.core.codec`),
    so a merge, handoff or replayed hint that reproduces an already-seen
    sibling set hashes nothing.
    """
    dots = tuple(sorted(s.origin_dot for s in mechanism.siblings(state)))
    return codec.sibling_set_fingerprint(dots)


def state_fingerprint_cold(mechanism, state) -> bytes:
    """Uncached recompute of :func:`state_fingerprint` (audits and tests)."""
    dots = tuple(sorted(s.origin_dot for s in mechanism.siblings(state)))
    return _hash_bytes(codec.sibling_set_material(dots))


def key_fingerprint(node: StorageNode, key: str) -> bytes:
    """Fingerprint of a key's sibling set at one replica."""
    return state_fingerprint(node.mechanism, node.storage.get_state(key))


def bucket_path(key: str, fanout: int, depth: int) -> Tuple[int, ...]:
    """The leaf-bucket path a key hashes to in a (fanout, depth) tree.

    Shared by :class:`MerkleTree` and the incremental
    :class:`~repro.kvstore.merkle_index.MerkleIndex` so a write-maintained
    index and a from-scratch rebuild place every key in the same bucket and
    produce byte-identical digests.
    """
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return tuple(digest[level] % fanout for level in range(depth))


@dataclass
class MerkleNode:
    """One node of the hash tree (internal or leaf bucket)."""

    digest: bytes
    children: List["MerkleNode"] = field(default_factory=list)
    keys: List[str] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class MerkleTree:
    """A fixed-depth, fixed-fanout Merkle tree over a key space.

    Keys are assigned to leaf buckets by hashing, so two trees built over the
    same key universe place every key in the same bucket and their digests are
    directly comparable level by level.
    """

    def __init__(self,
                 fingerprints: Dict[str, bytes],
                 fanout: int = 16,
                 depth: int = 2,
                 prebuilt_root: Optional[MerkleNode] = None) -> None:
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.fanout = fanout
        self.depth = depth
        self._fingerprints = dict(fingerprints)
        # ``prebuilt_root`` lets an incrementally maintained index snapshot
        # itself as a MerkleTree without re-hashing anything (the digests were
        # already paid for, one leaf path at a time, on the write path).
        self.root = prebuilt_root if prebuilt_root is not None else self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def for_node(cls, node: StorageNode, keys: Optional[Iterable[str]] = None,
                 fanout: int = 16, depth: int = 2) -> "MerkleTree":
        """Build the tree of one replica's current state."""
        key_list = list(keys) if keys is not None else node.storage.keys()
        fingerprints = {key: key_fingerprint(node, key) for key in key_list}
        return cls(fingerprints, fanout=fanout, depth=depth)

    def _bucket_path(self, key: str) -> Tuple[int, ...]:
        return bucket_path(key, self.fanout, self.depth)

    def _build(self) -> MerkleNode:
        buckets: Dict[Tuple[int, ...], List[str]] = {}
        for key in self._fingerprints:
            buckets.setdefault(self._bucket_path(key), []).append(key)

        def build_level(prefix: Tuple[int, ...], level: int) -> MerkleNode:
            if level == self.depth:
                keys = sorted(buckets.get(prefix, []))
                material = b"".join(self._fingerprints[key] for key in keys)
                return MerkleNode(digest=_hash_bytes(material), keys=keys)
            children = [build_level(prefix + (branch,), level + 1)
                        for branch in range(self.fanout)]
            material = b"".join(child.digest for child in children)
            return MerkleNode(digest=_hash_bytes(material), children=children)

        return build_level((), 0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def root_digest(self) -> bytes:
        """Digest summarising the whole replica state."""
        return self.root.digest

    def fingerprint(self, key: str) -> Optional[bytes]:
        """The stored fingerprint for ``key`` (None when absent)."""
        return self._fingerprints.get(key)

    def keys(self) -> List[str]:
        """Every key covered by the tree, sorted."""
        return sorted(self._fingerprints)

    def node_at(self, path: Sequence[int]) -> MerkleNode:
        """The tree node addressed by a branch path (``()`` is the root)."""
        node = self.root
        for branch in path:
            if node.is_leaf or not 0 <= branch < len(node.children):
                raise ConfigurationError(f"invalid tree path {tuple(path)!r}")
            node = node.children[branch]
        return node

    def digest_at(self, path: Sequence[int]) -> bytes:
        """Digest of the node addressed by ``path``."""
        return self.node_at(path).digest

    def child_digests(self, path: Sequence[int]) -> List[Tuple[Tuple[int, ...], bytes]]:
        """``(child_path, digest)`` pairs for the children of ``path``'s node.

        This is one "level" of the hashtree exchange: a replica ships these
        pairs to its peer, which compares them against its own tree and asks
        for the children of the ones that differ.
        """
        node = self.node_at(path)
        prefix = tuple(path)
        return [(prefix + (branch,), child.digest)
                for branch, child in enumerate(node.children)]

    def bucket_fingerprints(self, path: Sequence[int]) -> Dict[str, bytes]:
        """``{key: fingerprint}`` of the leaf bucket addressed by ``path``."""
        node = self.node_at(path)
        if not node.is_leaf:
            raise ConfigurationError(f"path {tuple(path)!r} is not a leaf bucket")
        return {key: self._fingerprints[key] for key in node.keys}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MerkleTree):
            return NotImplemented
        return self.root_digest == other.root_digest

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash(self.root_digest)


@dataclass
class DiffStats:
    """How much work a tree-driven comparison did (for the efficiency report)."""

    nodes_compared: int = 0
    buckets_descended: int = 0
    keys_compared: int = 0
    keys_divergent: int = 0


def diff_keys(left: MerkleTree, right: MerkleTree,
              stats: Optional[DiffStats] = None) -> List[str]:
    """Keys whose fingerprints differ between the two trees.

    Only descends into subtrees whose digests differ, and only compares the
    individual key fingerprints of leaf buckets that differ — the property
    that makes hashtree exchange cheap when replicas mostly agree.
    """
    if left.fanout != right.fanout or left.depth != right.depth:
        raise ConfigurationError("cannot diff Merkle trees with different shapes")
    stats = stats if stats is not None else DiffStats()
    divergent: List[str] = []

    def walk(a: MerkleNode, b: MerkleNode) -> None:
        stats.nodes_compared += 1
        if a.digest == b.digest:
            return
        if a.is_leaf and b.is_leaf:
            stats.buckets_descended += 1
            keys = set(a.keys) | set(b.keys)
            for key in sorted(keys):
                stats.keys_compared += 1
                if left.fingerprint(key) != right.fingerprint(key):
                    stats.keys_divergent += 1
                    divergent.append(key)
            return
        for child_a, child_b in zip(a.children, b.children):
            walk(child_a, child_b)

    walk(left.root, right.root)
    return divergent


#: How replica hash trees are obtained for an exchange: incrementally
#: maintained on every write (the default, Riak-style persistent hashtrees)
#: or rebuilt from scratch per exchange (the pre-index behaviour, kept for
#: the maintenance-cost ablation).
MERKLE_MAINTENANCE_MODES = ("incremental", "rebuild")


class MerkleAntiEntropy:
    """Anti-entropy for the synchronous store driven by Merkle-tree diffs.

    Each round picks the next replica pair (round-robin), obtains both trees,
    and synchronises only the keys the diff reports.  Statistics accumulate
    across rounds so tests and benchmarks can compare the transfer volume
    against the naive all-keys exchange.

    With ``maintenance="incremental"`` (the default) each replica carries a
    write-maintained :class:`~repro.kvstore.merkle_index.MerkleIndex` (attached
    here if the node does not have one yet) and a round takes cheap digest
    snapshots; ``maintenance="rebuild"`` re-hashes the full key space per
    round, the cost the index exists to remove.
    """

    def __init__(self, store: SyncReplicatedStore, fanout: int = 16, depth: int = 2,
                 maintenance: str = "incremental") -> None:
        if maintenance not in MERKLE_MAINTENANCE_MODES:
            raise ConfigurationError(
                f"unknown merkle maintenance mode {maintenance!r}; "
                f"choose from {MERKLE_MAINTENANCE_MODES}"
            )
        self.store = store
        self.fanout = fanout
        self.depth = depth
        self.maintenance = maintenance
        self._pair_index = 0
        self.rounds_run = 0
        self.keys_synced = 0
        self.keys_skipped = 0
        self.diff_stats = DiffStats()
        if maintenance == "incremental":
            from .merkle_index import MerkleIndex  # circular-import guard
            for node in self.store.servers.values():
                index = node.merkle_index
                if index is None or index.fanout != fanout or index.depth != depth:
                    node.attach_merkle_index(
                        MerkleIndex(node.mechanism, fanout=fanout, depth=depth,
                                    counters=node.stats)
                    )

    def _pairs(self) -> List[Tuple[str, str]]:
        servers = sorted(self.store.servers)
        return [
            (servers[i], servers[j])
            for i in range(len(servers))
            for j in range(i + 1, len(servers))
        ]

    def _universe(self, *nodes: StorageNode) -> Set[str]:
        keys: Set[str] = set()
        for node in nodes:
            keys.update(node.storage.keys())
        return keys

    def _trees(self, source: StorageNode,
               target: StorageNode) -> Tuple[MerkleTree, MerkleTree, int]:
        """Both replicas' trees plus the key-universe size (for accounting).

        A snapshot covers only the keys the replica holds while a rebuild
        covers the shared universe (absent keys hash to the empty fingerprint);
        both conventions localise exactly the same divergent keys as long as
        the two sides use the same one.  Only the rebuild branch pays the
        O(universe) sort + double re-hash; the incremental branch's cost is
        the snapshots (dirty-bucket flush + digest copy).
        """
        if self.maintenance == "incremental":
            left = source.merkle_index.snapshot()
            right = target.merkle_index.snapshot()
            total = len(left._fingerprints.keys() | right._fingerprints.keys())
            return left, right, total
        universe = sorted(self._universe(source, target))
        trees = []
        for node in (source, target):
            node.stats["full_rebuilds"] += 1
            node.stats["keys_hashed"] += len(universe)
            trees.append(MerkleTree.for_node(node, universe,
                                             fanout=self.fanout, depth=self.depth))
        return trees[0], trees[1], len(universe)

    def run_round(self) -> Tuple[str, str, List[str]]:
        """Synchronise one replica pair; returns the pair and the keys transferred."""
        pairs = self._pairs()
        if not pairs:
            raise ConfigurationError("Merkle anti-entropy needs at least two servers")
        source_id, target_id = pairs[self._pair_index % len(pairs)]
        self._pair_index += 1
        self.rounds_run += 1

        source = self.store.node(source_id)
        target = self.store.node(target_id)
        left, right, total_keys = self._trees(source, target)
        divergent = diff_keys(left, right, self.diff_stats)

        for key in divergent:
            self.store.sync_key(key, source_id, target_id, bidirectional=True)
        self.keys_synced += len(divergent)
        self.keys_skipped += total_keys - len(divergent)
        return source_id, target_id, divergent

    def run_until_converged(self, max_rounds: int = 100) -> int:
        """Run rounds until the store converges; returns the number of rounds."""
        for round_number in range(1, max_rounds + 1):
            self.run_round()
            if self.store.is_converged():
                return round_number
        raise ConfigurationError(f"store did not converge within {max_rounds} rounds")

    def efficiency(self) -> float:
        """Fraction of key exchanges avoided compared to an all-keys exchange."""
        total = self.keys_synced + self.keys_skipped
        if total == 0:
            return 0.0
        return self.keys_skipped / total
