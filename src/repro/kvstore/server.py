"""Storage node: the replica-local half of the store.

A :class:`StorageNode` owns a :class:`~repro.kvstore.storage.NodeStorage` and
executes the replica-local steps of the protocol — read a key's state, apply a
coordinated write through the causality mechanism, merge a remote replica's
state.  It knows nothing about quorums, placement or the network; the
synchronous store (:mod:`repro.kvstore.sync_store`) calls it directly and the
simulated cluster (:mod:`repro.kvstore.simulated`) wraps it in a message
handler.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..clocks.interface import CausalityMechanism, ReadResult, Sibling
from ..core.exceptions import StaleContextError
from .context import CausalContext
from .storage import Hint, NodeStorage

#: Merge provenance → stats counter.  Hint replays and Merkle-delta key
#: transfers are accounted separately from ordinary merges so tests and
#: reports can tell the convergence paths apart.
MERGE_COUNTERS = {
    "merge": "merges",
    "hint": "hint_replays",
    "merkle": "merkle_syncs",
    "handoff": "handoffs",
}

#: Hash-tree maintenance counters, seeded to zero on every node so cluster
#: stat totals keep a stable shape whether the node carries an incremental
#: Merkle index, rebuilds trees per exchange, or does no anti-entropy at all.
#: The :class:`~repro.kvstore.merkle_index.MerkleIndex` increments them.
INDEX_COUNTERS = ("keys_hashed", "buckets_rehashed", "full_rebuilds",
                  "snapshot_digests", "fingerprints_imported",
                  "rebuilds_skipped", "audit_keys_checked",
                  "audit_mismatches")


class StorageNode:
    """One replica server."""

    def __init__(self,
                 node_id: str,
                 mechanism: CausalityMechanism,
                 partition_map=None) -> None:
        self.node_id = node_id
        self.mechanism = mechanism
        self.storage = NodeStorage(mechanism, partition_map=partition_map)
        #: Incremental Merkle index over this node's key space, when attached
        #: (see :meth:`attach_merkle_index`); None means exchanges rebuild
        #: trees from scratch.
        self.merkle_index = None
        #: Operation counters for diagnostics and reports.  ``merges`` counts
        #: ordinary replication/read-repair merges only; hint replays, Merkle
        #: anti-entropy transfers and rebalancing handoffs have their own
        #: counters (see :data:`MERGE_COUNTERS`); hash-tree maintenance has
        #: the :data:`INDEX_COUNTERS`.
        self.stats = {
            "reads": 0,
            "writes": 0,
            "merges": 0,
            "hint_replays": 0,
            "merkle_syncs": 0,
            "handoffs": 0,
            "hints_stored": 0,
            "hint_replays_deferred": 0,
        }
        self.stats.update({name: 0 for name in INDEX_COUNTERS})
        # Set by a clean shutdown, consumed (or voided) by the next restart,
        # wipe or mutation: "the flushed index still matches the disk".
        self._index_clean = False

    # ------------------------------------------------------------------ #
    # Replica-local operations
    # ------------------------------------------------------------------ #
    def local_read(self, key: str) -> ReadResult:
        """Read the key's live siblings and the mechanism context describing them."""
        self.stats["reads"] += 1
        return self.mechanism.read(self.storage.get_state(key))

    def local_write(self,
                    key: str,
                    context: Optional[CausalContext],
                    sibling: Sibling,
                    client_id: str) -> Any:
        """Apply a client write coordinated by this node.

        ``context`` may be None for a blind write (never-read client).  The
        returned value is the new mechanism state (also stored), which the
        coordinator replicates to the other replicas.
        """
        self.stats["writes"] += 1
        self._index_clean = False
        if context is not None and context.key != key:
            raise StaleContextError(
                f"context for key {context.key!r} used to write key {key!r}"
            )
        mechanism_context = (
            context.mechanism_context if context is not None else self.mechanism.empty_context()
        )
        state = self.storage.get_state(key)
        new_state = self.mechanism.write(state, mechanism_context, sibling, self.node_id, client_id)
        self.storage.put_state(key, new_state)
        return new_state

    def local_merge(self, key: str, remote_state: Any, reason: str = "merge") -> Any:
        """Merge a remote replica's state for ``key`` into the local one.

        ``reason`` selects the stats counter: ``"merge"`` (replication, read
        repair, full-state sync), ``"hint"`` (hinted-handoff replay),
        ``"merkle"`` (Merkle-delta anti-entropy transfer) or ``"handoff"``
        (rebalancing after a membership change).
        """
        self.stats[MERGE_COUNTERS[reason]] += 1
        self._index_clean = False
        merged = self.mechanism.merge(self.storage.get_state(key), remote_state)
        self.storage.put_state(key, merged)
        return merged

    def state_of(self, key: str) -> Any:
        """The raw mechanism state stored for ``key`` (for replication/sync)."""
        return self.storage.get_state(key)

    # ------------------------------------------------------------------ #
    # Incremental Merkle index lifecycle
    # ------------------------------------------------------------------ #
    def attach_merkle_index(self, index) -> Any:
        """Attach an incremental Merkle index; it then tracks every mutation.

        The index subscribes to the storage mutation stream and is seeded
        from the current contents, so it can be attached to a node that has
        already served writes.  Replaces (and detaches) any previous index.
        Works for both a flat :class:`~repro.kvstore.merkle_index.MerkleIndex`
        (whole-node subscription) and a
        :class:`~repro.kvstore.merkle_index.VnodeIndexSet` (one subscription
        per vnode range) — each knows how to wire itself via ``attach``.
        """
        if self.merkle_index is not None:
            self.merkle_index.detach(self.storage)
        self.merkle_index = index
        index.attach(self.storage)
        index.rebuild(self.storage)
        return index

    def wipe(self, partition: Optional[int] = None) -> None:
        """Lose disk contents — the whole disk, or one vnode's slice of it.

        With ``partition`` given, only that vnode's key states (and the hints
        for keys in its range) are dropped; the other vnodes survive intact.
        The attached index hears the per-key drops through the mutation
        stream, so only the wiped range's tree empties.

        With no partition, the whole disk is replaced (hints and key states
        lost).  The Merkle index summarises the disk, so it is emptied with
        it — a wiped node's tree must advertise "I hold nothing" or
        anti-entropy would skip the repopulation it needs.
        """
        self._index_clean = False
        if partition is not None:
            self.storage.wipe_vnode(partition)
            return
        old_storage = self.storage
        self.storage = NodeStorage(self.mechanism,
                                   partition_map=old_storage.partition_map)
        if self.merkle_index is not None:
            self.merkle_index.detach(old_storage)
            self.merkle_index.reset()
            self.merkle_index.attach(self.storage)

    def shutdown(self) -> None:
        """Clean shutdown: flush the Merkle index and mark it durable.

        Models stopping the process only after storage finished its
        bookkeeping: dirty leaf buckets are flushed so the on-disk trees
        match the on-disk key states, and the node remembers the index is
        clean.  The next :meth:`restart` then adopts the maintained digests
        instead of rebuilding — Riak's "hashtree marked clean on graceful
        stop" optimisation.  Any wipe, and any mutation applied after the
        flush, voids the cleanliness again.
        """
        if self.merkle_index is not None:
            self.merkle_index.flush()
            self._index_clean = True

    def restart(self) -> None:
        """Process restart: disk contents survive; the index only if clean.

        After a crash the in-memory trees are as good as gone, so the Merkle
        index is rebuilt from storage (counted in ``full_rebuilds`` per
        non-empty vnode) the way Riak reconstructs a missing hashtree at
        startup.  After a clean :meth:`shutdown` the flushed trees still
        match the disk, so they are adopted as-is and each occupied vnode's
        avoided rebuild is counted in ``rebuilds_skipped`` instead.
        """
        if self.merkle_index is None:
            return
        if self._index_clean:
            self._index_clean = False
            vnode_indexes = getattr(self.merkle_index, "indexes", None)
            if vnode_indexes is not None:
                occupied = sum(1 for index in vnode_indexes.values()
                               if index.key_count)
            else:
                occupied = 1 if self.merkle_index.key_count else 0
            self.stats["rebuilds_skipped"] += occupied
            return
        self.merkle_index.rebuild(self.storage)

    def audit_merkle_index(self, sample_size: int = 64, rng=None) -> dict:
        """Cold-verify a sample of stored keys against the attached index.

        Returns ``{"keys_checked": 0, "mismatches": 0}`` when no index is
        attached (nothing to drift).  See
        :meth:`repro.kvstore.merkle_index.MerkleIndex.audit`.
        """
        if self.merkle_index is None:
            return {"keys_checked": 0, "mismatches": 0}
        return self.merkle_index.audit(self.storage, sample_size=sample_size,
                                       rng=rng)

    def ingest_handoff(self, key: str, state: Any, fingerprint: Optional[bytes] = None) -> Any:
        """Absorb one key of a vnode handoff, reusing the sender's digest.

        When the sender ships the fingerprint its maintained index already
        holds for the key, the receiver can adopt the state *and* the digest
        without re-hashing anything: a key the receiver does not hold is
        stored with the imported fingerprint, and a key whose local
        fingerprint equals the incoming one is provably the identical sibling
        set (the fingerprint covers the sorted sibling origin dots), so the
        merge would be a no-op and is skipped.  Only a genuine fingerprint
        mismatch — the receiver holds a *different* state for the key — falls
        back to a real merge, which re-fingerprints just that key.
        """
        if fingerprint is None:
            return self.local_merge(key, state, reason="handoff")
        self.stats[MERGE_COUNTERS["handoff"]] += 1
        self._index_clean = False
        if not self.storage.has_key(key):
            self.storage.put_state(key, state, fingerprint=fingerprint)
            return state
        index = self.merkle_index
        if index is not None and index.fingerprint(key) == fingerprint:
            return self.storage.get_state(key)
        merged = self.mechanism.merge(self.storage.get_state(key), state)
        self.storage.put_state(key, merged)
        return merged

    def siblings_of(self, key: str) -> List[Sibling]:
        """The live sibling versions stored for ``key``."""
        return self.mechanism.siblings(self.storage.get_state(key))

    def values_of(self, key: str) -> List[Any]:
        """Just the application values of the live siblings."""
        return [sibling.value for sibling in self.siblings_of(key)]

    # ------------------------------------------------------------------ #
    # Hinted handoff
    # ------------------------------------------------------------------ #
    def store_hint(self, target_id: str, key: str, state: Any,
                   trace: Any = None) -> Hint:
        """Hold a write for an unreachable replica until it recovers.

        Hints are persisted in the node's storage layer, so they share the
        disk's fate: a process restart keeps them (replay resumes), a wiped
        disk loses them together with the key states.
        """
        self.stats["hints_stored"] += 1
        return self.storage.store_hint(target_id, key, state, trace=trace)

    def hints_for(self, target_id: str) -> List[Hint]:
        """The outstanding hints destined for ``target_id`` (oldest first)."""
        return self.storage.hints_for(target_id)

    def hint_targets(self) -> List[str]:
        """Node ids with at least one outstanding hint, sorted."""
        return self.storage.hint_targets()

    def pending_hints(self) -> int:
        """Total outstanding hints across all targets."""
        return self.storage.pending_hints()

    def clear_hints(self, target_id: str, hint_ids: Optional[List[int]] = None) -> None:
        """Drop acknowledged hints (all of a target's when ``hint_ids`` is None)."""
        self.storage.clear_hints(target_id, hint_ids)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, key: Optional[str] = None) -> int:
        """Causality-metadata entries held by this node (for one key or all)."""
        return self.storage.metadata_entries(key)

    def metadata_bytes(self, key: Optional[str] = None) -> int:
        """Causality-metadata bytes held by this node (for one key or all)."""
        return self.storage.metadata_bytes(key)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"StorageNode(id={self.node_id!r}, mechanism={self.mechanism.name!r})"
