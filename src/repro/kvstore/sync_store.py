"""The synchronous replicated store: exact control over interleavings.

This store executes every operation immediately (no simulated network), which
makes it the right substrate for the correctness experiments: the Figure 1
trace needs writes, reads and server synchronisations to happen in an exact
order, and the metadata / pruning / sibling experiments need to replay an
identical interleaving under several causality mechanisms.  The latency
experiment uses the message-passing cluster in
:mod:`repro.kvstore.simulated` instead.

Replication model
-----------------
A write is coordinated by a single server (chosen explicitly, or by the
placement service, or defaulting to the first replica).  By default the write
stays on the coordinator until replicas synchronise — exactly the model in
Figure 1, where server A and server B only exchange versions at the dotted
"sync" arrows — but ``replicate_on_write=True`` pushes the new state to the
other replicas immediately (quorum-free eager replication), which is how the
workload experiments keep replicas loosely converged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..clocks.interface import CausalityMechanism, Sibling
from ..cluster.preference_list import PlacementService
from ..cluster.ring import PartitionMap
from ..core.exceptions import ConfigurationError, KeyNotFoundError, StaleContextError
from .client import ClientSession, GetResult, PutResult
from .context import CausalContext
from .server import StorageNode
from .write_log import WriteLog


class SyncReplicatedStore:
    """A fully synchronous replicated key-value store.

    Parameters
    ----------
    mechanism:
        The causality mechanism under test (shared by every node of the run).
    server_ids:
        Identifiers of the replica servers.  With no placement service, every
        server replicates every key (the Figure 1 setting).
    placement:
        Optional :class:`~repro.cluster.preference_list.PlacementService`; when
        given, keys are replicated on their N-node preference list only.
    replicate_on_write:
        Push the coordinator's new state to the key's other replicas
        immediately after every write.
    write_log:
        Oracle write log; a fresh one is created when omitted.
    partition_map:
        Optional :class:`~repro.cluster.ring.PartitionMap` giving every node
        the vnode-scoped storage layout (one store per key range).  Omitted
        by default — the synchronous experiments are single-range.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 server_ids: Sequence[str] = ("A", "B", "C"),
                 placement: Optional[PlacementService] = None,
                 replicate_on_write: bool = False,
                 write_log: Optional[WriteLog] = None,
                 partition_map: Optional[PartitionMap] = None) -> None:
        if not server_ids:
            raise ConfigurationError("at least one server id is required")
        self.mechanism = mechanism
        self.servers: Dict[str, StorageNode] = {
            server_id: StorageNode(server_id, mechanism,
                                   partition_map=partition_map)
            for server_id in server_ids
        }
        self.placement = placement
        self.replicate_on_write = replicate_on_write
        self.write_log = write_log if write_log is not None else WriteLog()
        self._clock = 0.0

    # ------------------------------------------------------------------ #
    # Placement helpers
    # ------------------------------------------------------------------ #
    def replicas_for(self, key: str) -> List[str]:
        """The servers that replicate ``key``."""
        if self.placement is None:
            return sorted(self.servers)
        return [node for node in self.placement.active_replicas(key) if node in self.servers]

    def coordinator_for(self, key: str) -> str:
        """The default coordinating server for ``key``."""
        replicas = self.replicas_for(key)
        if not replicas:
            raise ConfigurationError(f"no replicas available for key {key!r}")
        return replicas[0]

    def node(self, server_id: str) -> StorageNode:
        """The storage node with the given id."""
        try:
            return self.servers[server_id]
        except KeyError:
            raise ConfigurationError(f"unknown server {server_id!r}") from None

    # ------------------------------------------------------------------ #
    # Client operations
    # ------------------------------------------------------------------ #
    def get(self,
            key: str,
            client: ClientSession,
            server_id: Optional[str] = None) -> GetResult:
        """Read ``key`` from one replica (the coordinator unless specified)."""
        self._clock += 1
        node = self.node(server_id) if server_id else self.node(self.coordinator_for(key))
        read = node.local_read(key)
        context = client.absorb_read(key, read, self.mechanism.name)
        return GetResult(
            key=key,
            values=[sibling.value for sibling in read.siblings],
            siblings=list(read.siblings),
            context=context,
        )

    def put(self,
            key: str,
            value: Any,
            client: ClientSession,
            context: Optional[CausalContext] = None,
            server_id: Optional[str] = None) -> PutResult:
        """Write ``key`` through a coordinating replica.

        ``context`` should be the context of the client's last read of the key
        (or None for a blind write).  Supplying a context minted by a
        different mechanism is a programming error and fails loudly.
        """
        self._clock += 1
        if context is not None and context.mechanism_name != self.mechanism.name:
            raise StaleContextError(
                f"context was produced by mechanism {context.mechanism_name!r}, "
                f"store runs {self.mechanism.name!r}"
            )
        coordinator = server_id if server_id else self.coordinator_for(key)
        node = self.node(coordinator)
        sibling = client.prepare_write(key, value, context)
        new_state = node.local_write(key, context, sibling, client.client_id)
        self.write_log.append(key, sibling, coordinator, client.client_id, self._clock)

        if self.replicate_on_write:
            for replica_id in self.replicas_for(key):
                if replica_id != coordinator:
                    self.node(replica_id).local_merge(key, new_state)
        return PutResult(key=key, context=None, coordinator=coordinator, sibling=sibling)

    def values(self, key: str, server_id: Optional[str] = None) -> List[Any]:
        """The live values of ``key`` at one replica (no client bookkeeping)."""
        node = self.node(server_id) if server_id else self.node(self.coordinator_for(key))
        return node.values_of(key)

    def siblings(self, key: str, server_id: Optional[str] = None) -> List[Sibling]:
        """The live siblings of ``key`` at one replica (no client bookkeeping)."""
        node = self.node(server_id) if server_id else self.node(self.coordinator_for(key))
        return node.siblings_of(key)

    # ------------------------------------------------------------------ #
    # Replica synchronisation
    # ------------------------------------------------------------------ #
    def sync_key(self, key: str, source_id: str, target_id: str,
                 bidirectional: bool = True) -> None:
        """Synchronise one key between two replicas (Figure 1's dotted arrows)."""
        source = self.node(source_id)
        target = self.node(target_id)
        target.local_merge(key, source.state_of(key))
        if bidirectional:
            source.local_merge(key, target.state_of(key))

    def sync_all(self, key: Optional[str] = None) -> None:
        """One full round of pairwise synchronisation between all replicas."""
        keys = [key] if key is not None else self._all_keys()
        server_ids = sorted(self.servers)
        for key_to_sync in keys:
            replicas = [s for s in self.replicas_for(key_to_sync) if s in self.servers]
            for i, source_id in enumerate(replicas):
                for target_id in replicas[i + 1:]:
                    self.sync_key(key_to_sync, source_id, target_id, bidirectional=True)
        del server_ids  # placement decides per-key replicas; kept for clarity

    def converge(self, key: Optional[str] = None, max_rounds: int = 10) -> int:
        """Run sync rounds until every replica of every key holds identical siblings.

        Returns the number of rounds it took.  Raises if convergence is not
        reached within ``max_rounds`` — with the mechanisms in this library a
        single round suffices for full replication, so hitting the bound
        indicates a broken merge function.
        """
        for round_number in range(1, max_rounds + 1):
            self.sync_all(key)
            if self.is_converged(key):
                return round_number
        raise ConfigurationError(f"replicas failed to converge within {max_rounds} rounds")

    def is_converged(self, key: Optional[str] = None) -> bool:
        """True iff every replica of every (or one) key stores the same sibling set."""
        keys = [key] if key is not None else self._all_keys()
        for key_to_check in keys:
            replicas = self.replicas_for(key_to_check)
            if not replicas:
                continue
            reference = self._sibling_fingerprint(key_to_check, replicas[0])
            for replica_id in replicas[1:]:
                if self._sibling_fingerprint(key_to_check, replica_id) != reference:
                    return False
        return True

    def _sibling_fingerprint(self, key: str, server_id: str) -> frozenset:
        return frozenset(
            sibling.origin_dot for sibling in self.node(server_id).siblings_of(key)
        )

    def _all_keys(self) -> List[str]:
        keys = set()
        for node in self.servers.values():
            keys.update(node.storage.keys())
        return sorted(keys)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, key: Optional[str] = None) -> int:
        """Total causality-metadata entries across all replicas."""
        return sum(node.metadata_entries(key) for node in self.servers.values())

    def metadata_bytes(self, key: Optional[str] = None) -> int:
        """Total causality-metadata bytes across all replicas."""
        return sum(node.metadata_bytes(key) for node in self.servers.values())

    def max_metadata_entries_per_key(self) -> int:
        """The largest per-key, per-replica metadata entry count in the store."""
        largest = 0
        for node in self.servers.values():
            for key in node.storage.keys():
                largest = max(largest, node.metadata_entries(key))
        return largest

    def sibling_counts(self, key: str) -> Dict[str, int]:
        """Number of live siblings of ``key`` at each replica."""
        return {
            server_id: len(node.siblings_of(key))
            for server_id, node in self.servers.items()
            if server_id in self.replicas_for(key)
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SyncReplicatedStore(mechanism={self.mechanism.name!r}, "
            f"servers={sorted(self.servers)})"
        )
