"""Causal contexts: the opaque token clients carry between GET and PUT.

In a Dynamo/Riak-style store a read returns, besides the value(s), a *causal
context*; the client must send that context back with its next write so the
store knows which versions the write supersedes.  The representation of the
context is owned by the causality mechanism under test (a version vector for
DVV/DVVSet/client-VV/server-VV, a causal history for the oracle, a VVE for the
WinFS baseline); :class:`CausalContext` wraps it together with the key it
belongs to and the ground-truth history the reading client observed, which the
analysis layer needs but the mechanisms never see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.causal_history import CausalHistory


@dataclass(frozen=True)
class CausalContext:
    """Context returned by a GET and supplied with the following PUT.

    Attributes
    ----------
    key:
        The key the context belongs to.  Contexts are never valid across keys;
        the store rejects mismatched ones.
    mechanism_context:
        The mechanism-specific causal summary (opaque to clients).
    observed_history:
        Ground-truth causal history of everything the reading client saw.
        Used only by the correctness oracle — a real deployment would not
        carry this.
    mechanism_name:
        Name of the mechanism that produced the context, so accidentally
        mixing runs fails loudly instead of corrupting results.
    """

    key: str
    mechanism_context: Any
    observed_history: CausalHistory
    mechanism_name: str

    @classmethod
    def initial(cls, key: str, mechanism_name: str, empty_context: Any) -> "CausalContext":
        """The context of a client that has never read ``key`` (blind write)."""
        return cls(
            key=key,
            mechanism_context=empty_context,
            observed_history=CausalHistory.empty(),
            mechanism_name=mechanism_name,
        )

    def with_mechanism_context(self, mechanism_context: Any) -> "CausalContext":
        """Copy with a replaced mechanism context (used by read repair paths)."""
        return CausalContext(
            key=self.key,
            mechanism_context=mechanism_context,
            observed_history=self.observed_history,
            mechanism_name=self.mechanism_name,
        )

    def merged_history(self, other: CausalHistory) -> "CausalContext":
        """Copy whose ground-truth history additionally covers ``other``."""
        return CausalContext(
            key=self.key,
            mechanism_context=self.mechanism_context,
            observed_history=self.observed_history.merge(other),
            mechanism_name=self.mechanism_name,
        )
