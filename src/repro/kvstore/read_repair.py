"""Read repair: opportunistic convergence on the read path.

When a coordinator gathers replies from R replicas and notices they disagree,
it merges their states (through the causality mechanism) and pushes the merged
state back to the replicas that were missing versions.  Read repair is the
second convergence mechanism next to anti-entropy; it matters for the latency
experiment because the repair traffic also carries causality metadata, and for
the correctness experiments because an *inexact* mechanism merging during
repair is another place where it can silently drop concurrent versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..clocks.interface import CausalityMechanism


@dataclass
class RepairPlan:
    """Outcome of comparing R replica replies for one key.

    Attributes
    ----------
    merged_state:
        The mechanism-level merge of every reply.
    stale_replicas:
        Replica ids whose reply differed from the merged state and should be
        sent the merged state.
    agreed:
        True when every reply already described the same sibling set.
    """

    merged_state: Any
    stale_replicas: List[str]
    agreed: bool


def plan_read_repair(mechanism: CausalityMechanism,
                     replies: Sequence[Tuple[str, Any]]) -> RepairPlan:
    """Merge replica replies and decide which replicas need repairing.

    ``replies`` is a list of ``(replica_id, state)`` pairs.  Staleness is
    judged by comparing each replica's sibling fingerprint (the set of
    ground-truth origin dots it holds) against the merged state's fingerprint;
    the fingerprint is mechanism-independent so the plan itself cannot mask a
    mechanism's mistakes.
    """
    if not replies:
        raise ValueError("plan_read_repair needs at least one reply")
    merged_state = replies[0][1]
    for _, state in replies[1:]:
        merged_state = mechanism.merge(merged_state, state)
    merged_fingerprint = _fingerprint(mechanism, merged_state)
    stale = [
        replica_id for replica_id, state in replies
        if _fingerprint(mechanism, state) != merged_fingerprint
    ]
    return RepairPlan(
        merged_state=merged_state,
        stale_replicas=stale,
        agreed=not stale,
    )


def _fingerprint(mechanism: CausalityMechanism, state: Any) -> tuple:
    """Canonical, order-independent fingerprint of a state's sibling set.

    Mechanisms return their sibling lists in whatever internal order merging
    happened to produce, so the list is explicitly canonicalized — duplicates
    collapsed, then sorted by origin dot — before comparison.  The invariant
    this guarantees: a replica holding the same versions in a different
    order must never compare unequal to the merged state, or it would be
    sent the identical repair again on every read.
    """
    dots = {sibling.origin_dot for sibling in mechanism.siblings(state)}
    return tuple(sorted((dot.actor, dot.counter) for dot in dots))


class ReadRepairStats:
    """Counters describing how much repair traffic a run generated."""

    def __init__(self) -> None:
        self.reads_checked = 0
        self.repairs_triggered = 0
        self.replicas_repaired = 0
        #: Batched READ_REPAIR messages actually sent (repairs for one stale
        #: replica are coalesced, so this is <= ``replicas_repaired``).
        self.batches_sent = 0

    def record(self, plan: RepairPlan) -> None:
        """Account for one read's repair plan."""
        self.reads_checked += 1
        if not plan.agreed:
            self.repairs_triggered += 1
            self.replicas_repaired += len(plan.stale_replicas)

    @property
    def repair_rate(self) -> float:
        """Fraction of reads that triggered a repair."""
        if self.reads_checked == 0:
            return 0.0
        return self.repairs_triggered / self.reads_checked

    def as_dict(self) -> Dict[str, float]:
        """Snapshot for reports."""
        return {
            "reads_checked": self.reads_checked,
            "repairs_triggered": self.repairs_triggered,
            "replicas_repaired": self.replicas_repaired,
            "batches_sent": self.batches_sent,
            "repair_rate": self.repair_rate,
        }
