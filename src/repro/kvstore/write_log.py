"""The oracle's write log: every write ever accepted, with its ground truth.

The correctness experiments (E3, E5, the Figure 1 assertions) need to compare
what a causality mechanism *kept* against what it *should* have kept.  The
"should" side is computed from this log: a record per accepted write, carrying
the write's ground-truth causal history (what the writing client had observed
plus the write's own unique dot).  The log lives outside the mechanisms and
outside the storage nodes, so no mechanism can influence it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..clocks.interface import Sibling
from ..core.causal_history import CausalHistory
from ..core.comparison import Ordering
from ..core.dot import Dot


@dataclass(frozen=True)
class WriteRecord:
    """One accepted write, as the oracle saw it."""

    key: str
    sibling: Sibling
    server_id: str
    client_id: str
    timestamp: float = 0.0

    @property
    def origin_dot(self) -> Dot:
        """Ground-truth unique id of the write."""
        return self.sibling.origin_dot

    @property
    def history(self) -> CausalHistory:
        """Ground-truth causal history of the write."""
        return self.sibling.history


class WriteLog:
    """Append-only record of every write accepted by the store."""

    def __init__(self) -> None:
        self._records: List[WriteRecord] = []
        self._by_key: Dict[str, List[WriteRecord]] = {}

    def record(self, record: WriteRecord) -> None:
        """Append a write record."""
        self._records.append(record)
        self._by_key.setdefault(record.key, []).append(record)

    def append(self,
               key: str,
               sibling: Sibling,
               server_id: str,
               client_id: str,
               timestamp: float = 0.0) -> WriteRecord:
        """Convenience wrapper building and recording a :class:`WriteRecord`."""
        record = WriteRecord(key, sibling, server_id, client_id, timestamp)
        self.record(record)
        return record

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def all_records(self) -> List[WriteRecord]:
        """Every record, in acceptance order."""
        return list(self._records)

    def for_key(self, key: str) -> List[WriteRecord]:
        """Records for one key, in acceptance order."""
        return list(self._by_key.get(key, []))

    def keys(self) -> List[str]:
        """Keys that have at least one recorded write, sorted."""
        return sorted(self._by_key)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[WriteRecord]:
        return iter(self._records)

    # ------------------------------------------------------------------ #
    # Ground-truth relations
    # ------------------------------------------------------------------ #
    def latest_frontier(self, key: str) -> List[WriteRecord]:
        """The writes of ``key`` that no other write causally dominates.

        This is the ground-truth set of versions a perfectly precise store
        would expose after all replicas converge: everything not superseded by a
        causally later write.  The analysis layer compares each mechanism's
        surviving siblings against this frontier.
        """
        records = self.for_key(key)
        frontier: List[WriteRecord] = []
        for candidate in records:
            dominated = False
            for other in records:
                if other is candidate:
                    continue
                if candidate.history.compare(other.history) is Ordering.BEFORE:
                    dominated = True
                    break
            if not dominated:
                frontier.append(candidate)
        return frontier

    def record_for_dot(self, key: str, dot: Dot) -> Optional[WriteRecord]:
        """The write of ``key`` whose origin dot is ``dot`` (None if unknown)."""
        for record in self._by_key.get(key, []):
            if record.origin_dot == dot:
                return record
        return None
