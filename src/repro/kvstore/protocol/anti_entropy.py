"""Anti-entropy state machine: Merkle-delta and full-state exchanges.

One :class:`AntiEntropyEngine` per node runs the sync protocols over effects:

* **full-state** (``SYNC_REQUEST`` / ``SYNC_REPLY``) — the source ships every
  key it holds, the target merges and replies in kind;
* **Merkle-delta** — the per-vnode hashtree exchange: one
  ``MERKLE_PARTITION_DIGESTS`` / ``MERKLE_PARTITION_DIFF`` round trip compares
  per-range roots, then each differing range's tree is descended level by
  level (``MERKLE_SYNC_REQUEST`` / ``MERKLE_SYNC_RESPONSE``) down to leaf
  fingerprints, and finally only the divergent keys' states travel, batched
  into ``MERKLE_KEY_STATES`` messages.

Differing ranges are descended **concurrently**: `on_merkle_partition_diff`
opens every differing range at once and each descends independently (their
level messages interleave in flight), with an :class:`AntiEntropySession`
tracking the open set until the last range finishes.  The high-water mark of
simultaneously open range descents is recorded in
``MerkleSyncStats.max_concurrent_ranges`` so tests can assert the overlap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...network.message import Message, MessageType
from ..merkle import MerkleTree
from .effects import Send
from .util import chunked

#: Wire size of one tree digest in the Merkle exchange (sha256).
DIGEST_BYTES = 32

#: Message types that carry anti-entropy traffic (either strategy); the single
#: source of truth for "sync bytes" measurements in reports and benchmarks.
SYNC_MESSAGE_TYPES = (
    MessageType.SYNC_REQUEST.value,
    MessageType.SYNC_REPLY.value,
    MessageType.MERKLE_PARTITION_DIGESTS.value,
    MessageType.MERKLE_PARTITION_DIFF.value,
    MessageType.MERKLE_SYNC_REQUEST.value,
    MessageType.MERKLE_SYNC_RESPONSE.value,
    MessageType.MERKLE_KEY_STATES.value,
)


@dataclass
class MerkleSyncStats:
    """Cluster-wide counters for the Merkle-delta anti-entropy protocol."""

    exchanges_started: int = 0
    exchanges_clean: int = 0        # root digests matched, nothing to do
    levels_sent: int = 0
    keys_transferred: int = 0
    partitions_compared: int = 0    # per-range root comparisons performed
    partitions_differing: int = 0   # ranges whose roots differed (descended)
    #: High-water mark of simultaneously open range descents on any source
    #: node — evidence that differing ranges sync as parallel sessions.
    max_concurrent_ranges: int = 0


@dataclass
class AntiEntropySession:
    """Source-side state of one in-flight Merkle exchange.

    Per-vnode exchanges descend each differing range independently; the
    session tracks one frozen tree per open partition (``None`` is the
    whole-keyspace tree of the legacy single-tree protocol) and completes
    when every opened partition has finished its descent.
    """

    peer_id: str
    trees: Dict[Optional[int], MerkleTree] = field(default_factory=dict)
    open_partitions: set = field(default_factory=set)


class AntiEntropyEngine:
    """Per-node sync machine: sessions this node started plus peer-side caches."""

    def __init__(self, node) -> None:
        self._node = node
        # Merkle exchange state: sessions this node started (it owns the tree
        # snapshots and the per-range descents), and cached trees, keyed by
        # (peer, partition), for exchanges started by others (so digests stay
        # consistent across levels of one range's descent).
        self.sessions: Dict[int, AntiEntropySession] = {}
        self._session_ids = itertools.count(1)
        self.peer_trees: Dict[Tuple[str, Optional[int]],
                              Tuple[int, MerkleTree]] = {}

    # ------------------------------------------------------------------ #
    # Full-state exchange
    # ------------------------------------------------------------------ #
    def start_sync_with(self, peer_id: str) -> None:
        """Begin a full-state anti-entropy exchange with ``peer_id`` (push-pull)."""
        node = self._node
        states = {key: node.store.state_of(key) for key in node.store.storage.keys()}
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=peer_id,
            msg_type=MessageType.SYNC_REQUEST,
            payload={"states": states},
            size_bytes=sum(node.state_size(k, s) for k, s in states.items()),
        )))

    def on_sync_request(self, message: Message) -> None:
        node = self._node
        states = message.payload["states"]
        reply_states = {}
        for key, state in states.items():
            node.store.local_merge(key, state)
        for key in node.store.storage.keys():
            reply_states[key] = node.store.state_of(key)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=message.sender,
            msg_type=MessageType.SYNC_REPLY,
            payload={"states": reply_states},
            size_bytes=sum(node.state_size(k, s) for k, s in reply_states.items()),
            request_id=message.request_id,
        )))

    def on_sync_reply(self, message: Message) -> None:
        for key, state in message.payload["states"].items():
            self._node.store.local_merge(key, state)

    # ------------------------------------------------------------------ #
    # Merkle-delta exchange
    # ------------------------------------------------------------------ #
    def _merkle_tree(self, partition: Optional[int] = None) -> MerkleTree:
        """This node's hash tree for one exchange session (or one range of it).

        With incremental maintenance (the default) this snapshots the
        write-maintained per-vnode index set — digests were kept current by
        the mutation listeners, so the only work left is flushing dirty
        buckets and copying digests out; ``partition`` selects a single
        range's tree, None the combined whole-node tree.  In
        ``merkle_maintenance="rebuild"`` mode (the pre-index behaviour, kept
        for the maintenance-cost ablation) the whole key space is re-hashed
        and the cost is counted in the node's ``full_rebuilds`` /
        ``keys_hashed`` stats.
        """
        node = self._node
        if node.store.merkle_index is not None:
            if partition is not None:
                return node.store.merkle_index.snapshot_partition(partition)
            return node.store.merkle_index.snapshot()
        node.store.stats["full_rebuilds"] += 1
        node.store.stats["keys_hashed"] += len(node.store.storage)
        return MerkleTree.for_node(node.store,
                                   fanout=node.env.merkle_fanout,
                                   depth=node.env.merkle_depth)

    def open_range_count(self) -> int:
        """Range descents currently open across this node's source sessions."""
        return sum(len(session.open_partitions) for session in self.sessions.values())

    def _note_range_concurrency(self) -> None:
        stats = self._node.env.merkle_stats
        stats.max_concurrent_ranges = max(stats.max_concurrent_ranges,
                                          self.open_range_count())

    def start_merkle_sync_with(self, peer_id: str) -> None:
        """Begin a Merkle-delta exchange with ``peer_id``.

        With per-vnode indexes the exchange opens with one message carrying
        the root digest of every non-empty local range
        (``MERKLE_PARTITION_DIGESTS``); the peer compares range by range and
        names the differing ones, and only those ranges' trees are descended
        — a mostly-synced pair pays two messages total no matter how many
        ranges they hold.  Without a maintained index (rebuild mode) the
        legacy single-tree protocol runs: the whole keyspace is one tree and
        the exchange starts at its root.
        """
        node = self._node
        env = node.env
        # A lost message leaves a session dangling; starting a new exchange
        # with the same peer supersedes any older one.
        self.sessions = {
            session_id: session
            for session_id, session in self.sessions.items()
            if session.peer_id != peer_id
        }
        session_id = next(self._session_ids)
        session = AntiEntropySession(peer_id)
        self.sessions[session_id] = session
        env.merkle_stats.exchanges_started += 1

        index = node.store.merkle_index
        if index is not None and hasattr(index, "partition_ids"):
            # Per-range opening: snapshot and advertise non-empty ranges only
            # (absent ranges hash to the well-known empty root on both sides).
            roots: Dict[int, bytes] = {}
            for partition_id in index.partition_ids():
                if index.index_for(partition_id).key_count == 0:
                    continue
                tree = index.snapshot_partition(partition_id)
                session.trees[partition_id] = tree
                roots[partition_id] = tree.root_digest
            size = (len(roots) * (DIGEST_BYTES + 1)
                    + env.request_overhead_bytes)
            node.emit(Send(Message(
                sender=node.node_id,
                receiver=peer_id,
                msg_type=MessageType.MERKLE_PARTITION_DIGESTS,
                payload={"session": session_id, "roots": roots},
                size_bytes=size,
            )))
            return

        tree = self._merkle_tree()
        session.trees[None] = tree
        session.open_partitions.add(None)
        self._note_range_concurrency()
        self._send_merkle_level(session_id, peer_id, 0, [((), tree.root_digest)])

    def on_merkle_partition_digests(self, message: Message) -> None:
        """Target side: compare per-range roots, name the differing ranges."""
        node = self._node
        session_id = message.payload["session"]
        roots = message.payload["roots"]
        index = node.store.merkle_index
        stats = node.env.merkle_stats

        # A new exchange from this peer supersedes any cached range trees
        # left over from an older, possibly abandoned one.
        for cache_key in [cache_key for cache_key in self.peer_trees
                          if cache_key[0] == message.sender]:
            del self.peer_trees[cache_key]

        local_live = {partition_id for partition_id in index.partition_ids()
                      if index.index_for(partition_id).key_count > 0}
        compared = sorted(local_live | set(roots))
        differing: List[int] = []
        empty_root = index.empty_root_digest
        for partition_id in compared:
            remote_root = roots.get(partition_id, empty_root)
            if index.partition_root(partition_id) != remote_root:
                differing.append(partition_id)
                # Freeze this range's tree now so every level of the coming
                # descent compares against the same digests.
                self.peer_trees[(message.sender, partition_id)] = (
                    session_id, index.snapshot_partition(partition_id))
        stats.partitions_compared += len(compared)
        stats.partitions_differing += len(differing)

        node.emit(Send(Message(
            sender=node.node_id,
            receiver=message.sender,
            msg_type=MessageType.MERKLE_PARTITION_DIFF,
            payload={"session": session_id, "differing": differing},
            size_bytes=len(differing) + node.env.request_overhead_bytes,
        )))

    def on_merkle_partition_diff(self, message: Message) -> None:
        """Source side: descend each differing range; finish if none differ.

        Every differing range is opened *at once* — their level-by-level
        descents proceed as parallel sessions whose messages interleave on
        the wire, rather than one range waiting for the previous to finish.
        """
        node = self._node
        env = node.env
        session_id = message.payload["session"]
        session = self.sessions.get(session_id)
        if session is None or session.peer_id != message.sender:
            return  # stale session (lost messages, duplicate delivery)
        differing = message.payload["differing"]
        if not differing:
            self.sessions.pop(session_id, None)
            env.merkle_stats.exchanges_clean += 1
            return
        for partition_id in differing:
            tree = session.trees.get(partition_id)
            if tree is None:
                # The peer holds keys in a range we have nothing for — descend
                # with the empty tree so its leaf fingerprints localise them.
                tree = MerkleTree({}, fanout=env.merkle_fanout,
                                  depth=env.merkle_depth)
                session.trees[partition_id] = tree
            session.open_partitions.add(partition_id)
        self._note_range_concurrency()
        # The roots already differ (that is what the peer told us), so the
        # descent of each range starts at its children.
        for partition_id in differing:
            tree = session.trees[partition_id]
            self._send_merkle_level(session_id, session.peer_id, 1,
                                    tree.child_digests(()),
                                    partition=partition_id)

    def _send_merkle_level(self,
                           session_id: int,
                           peer_id: str,
                           level: int,
                           entries: List[Tuple[Tuple[int, ...], bytes]],
                           partition: Optional[int] = None) -> None:
        node = self._node
        node.env.merkle_stats.levels_sent += 1
        size = (len(entries) * (DIGEST_BYTES + max(level, 1))
                + node.env.request_overhead_bytes)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=peer_id,
            msg_type=MessageType.MERKLE_SYNC_REQUEST,
            payload={"session": session_id, "level": level, "entries": entries,
                     "partition": partition},
            size_bytes=size,
        )))

    def on_merkle_sync_request(self, message: Message) -> None:
        """Target side: compare received digests against the local tree."""
        node = self._node
        session_id = message.payload["session"]
        level = message.payload["level"]
        entries = message.payload["entries"]
        partition = message.payload.get("partition")

        cache_key = (message.sender, partition)
        cached = self.peer_trees.get(cache_key)
        if cached is None or cached[0] != session_id:
            # First message of this session for this range (or an earlier
            # message was lost and a deeper one arrived) — snapshot a fresh
            # tree for it.
            tree = self._merkle_tree(partition)
            self.peer_trees[cache_key] = (session_id, tree)
        else:
            tree = cached[1]

        differing = [tuple(path) for path, digest in entries
                     if tree.digest_at(path) != digest]
        at_leaves = level >= tree.depth
        buckets: Optional[Dict[Tuple[int, ...], Dict[str, bytes]]] = None
        size = len(differing) * (level + 1) + node.env.request_overhead_bytes
        if at_leaves and differing:
            buckets = {path: tree.bucket_fingerprints(path) for path in differing}
            size += sum(len(key.encode("utf-8")) + DIGEST_BYTES
                        for bucket in buckets.values() for key in bucket)
        if at_leaves or not differing:
            # This range's descent either finishes here or moves on to key
            # states, neither of which needs the cached tree snapshot any more.
            self.peer_trees.pop(cache_key, None)

        node.emit(Send(Message(
            sender=node.node_id,
            receiver=message.sender,
            msg_type=MessageType.MERKLE_SYNC_RESPONSE,
            payload={"session": session_id, "level": level,
                     "differing": differing, "buckets": buckets,
                     "partition": partition},
            size_bytes=size,
        )))

    def _finish_merkle_partition(self,
                                 session_id: int,
                                 session: AntiEntropySession,
                                 partition: Optional[int]) -> None:
        """One range's descent is done; the session ends with its last range."""
        session.open_partitions.discard(partition)
        if not session.open_partitions:
            self.sessions.pop(session_id, None)

    def on_merkle_sync_response(self, message: Message) -> None:
        """Source side: descend into differing paths or ship divergent keys."""
        node = self._node
        session_id = message.payload["session"]
        session = self.sessions.get(session_id)
        if session is None or session.peer_id != message.sender:
            return  # stale session (lost messages, duplicate delivery)
        differing = message.payload["differing"]
        level = message.payload["level"]
        partition = message.payload.get("partition")
        tree = session.trees.get(partition)
        if tree is None:
            return  # stale range (superseded session id reuse)

        if not differing:
            if partition is None and level == 0:
                # Legacy single-tree protocol: matching roots end the whole
                # exchange cleanly.
                node.env.merkle_stats.exchanges_clean += 1
            self._finish_merkle_partition(session_id, session, partition)
            return

        buckets = message.payload.get("buckets")
        if buckets is None:
            # Descend one level: ship child digests of every differing path.
            entries: List[Tuple[Tuple[int, ...], bytes]] = []
            for path in differing:
                entries.extend(tree.child_digests(path))
            self._send_merkle_level(session_id, session.peer_id, level + 1,
                                    entries, partition=partition)
            return

        # Leaf level: fingerprints localise the exact divergent keys.
        divergent: List[str] = []
        for path, peer_fingerprints in buckets.items():
            own_fingerprints = tree.bucket_fingerprints(tuple(path))
            for key in sorted(set(own_fingerprints) | set(peer_fingerprints)):
                if own_fingerprints.get(key) != peer_fingerprints.get(key):
                    divergent.append(key)
        peer_id = session.peer_id
        self._finish_merkle_partition(session_id, session, partition)
        self._send_merkle_key_states(peer_id, sorted(set(divergent)))

    def _send_merkle_key_states(self, peer_id: str, keys: Sequence[str],
                                want_reply: bool = True) -> None:
        """Ship states for the divergent keys, batched to amortise latency."""
        node = self._node
        env = node.env
        for chunk in chunked(list(keys), env.sync_batch_size):
            states = {key: node.store.state_of(key) for key in chunk
                      if node.store.storage.has_key(key)}
            want = list(chunk) if want_reply else []
            size = (sum(node.payload_state_size(key, state)
                        for key, state in states.items())
                    + sum(len(key.encode("utf-8")) for key in want)
                    + env.request_overhead_bytes)
            env.merkle_stats.keys_transferred += len(states)
            node.emit(Send(Message(
                sender=node.node_id,
                receiver=peer_id,
                msg_type=MessageType.MERKLE_KEY_STATES,
                payload={"states": states, "want": want},
                size_bytes=size,
            )))

    def on_merkle_key_states(self, message: Message) -> None:
        for key, state in message.payload["states"].items():
            self._node.store.local_merge(key, state, reason="merkle")
        want = message.payload.get("want") or []
        if want:
            # Reply with the (now merged) local states so both sides converge
            # in a single exchange.
            self._send_merkle_key_states(message.sender, want, want_reply=False)

    # ------------------------------------------------------------------ #
    # Rebalancing handoff (join / decommission)
    # ------------------------------------------------------------------ #
    def send_key_handoff(self, target_id: str, keys: Sequence[str]) -> None:
        """Push the states of ``keys`` to a node that became a replica home.

        When this node maintains an incremental index, each shipped key rides
        with the fingerprint its range tree already holds, so the receiver
        can adopt the digest instead of re-hashing the state
        (:meth:`StorageNode.ingest_handoff`): moving a vnode's worth of keys
        costs O(1) fresh fingerprints on both sides, not O(keys moved).
        """
        node = self._node
        env = node.env
        held = [key for key in keys if node.store.storage.has_key(key)]
        index = node.store.merkle_index
        for chunk in chunked(held, env.sync_batch_size):
            states = {key: node.store.state_of(key) for key in chunk}
            fingerprints: Dict[str, bytes] = {}
            if index is not None:
                for key in chunk:
                    fingerprint = index.fingerprint(key)
                    if fingerprint is not None:
                        fingerprints[key] = fingerprint
            size = (sum(node.payload_state_size(key, state)
                        for key, state in states.items())
                    + len(fingerprints) * DIGEST_BYTES
                    + env.request_overhead_bytes)
            node.emit(Send(Message(
                sender=node.node_id,
                receiver=target_id,
                msg_type=MessageType.KEY_HANDOFF,
                payload={"states": states, "fingerprints": fingerprints},
                size_bytes=size,
            )))

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def on_recover(self) -> None:
        """Drop in-flight exchange snapshots (process memory)."""
        self.sessions.clear()
        self.peer_trees.clear()
