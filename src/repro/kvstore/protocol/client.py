"""Client-side state machine: issue requests, fail over, record latencies.

A :class:`ClientProtocol` keeps a
:class:`~repro.kvstore.client.ClientSession` for causal bookkeeping and
records a :class:`RequestRecord` for every completed request.  Requests are
asynchronous: callers pass a callback that receives the
:class:`~repro.kvstore.client.GetResult` /
:class:`~repro.kvstore.client.PutResult` when the reply arrives (or ``None``
on failure).  Like the server-side machines it emits effects and arms named
timers — ``("client", request_id)`` is the per-attempt failover deadline of
async request mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ...clocks.interface import Sibling
from ...network.message import Message, MessageType
from ...obs.trace import NO_TRACER
from ..client import ClientSession, GetResult, PutResult
from .effects import ClearTimer, EffectList, Send, SetTimer
from .util import default_value_size


@dataclass
class RequestRecord:
    """One completed (or failed) client request, for latency analysis."""

    operation: str
    key: str
    client_id: str
    started_at: float
    finished_at: float
    ok: bool
    coordinator: str = ""
    sibling_count: int = 0
    context_bytes: int = 0
    #: Failure reason for ``ok=False`` records ("timeout", "quorum_unreachable", ...).
    error: str = ""

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in milliseconds (simulated or wall-clock)."""
        return self.finished_at - self.started_at


class _SyntheticRead:
    """Adapter giving :meth:`ClientSession.absorb_read` the shape it expects."""

    def __init__(self, siblings: Sequence[Sibling], context: Any) -> None:
        self.siblings = list(siblings)
        self.context = context


class ClientProtocol:
    """The client half of the protocol, as a transport-agnostic machine."""

    def __init__(self, client_id: str, env) -> None:
        self.client_id = client_id
        self.address = f"client:{client_id}"
        self.env = env
        self.session = ClientSession(client_id)
        self.records: List[RequestRecord] = []
        self.now = 0.0
        self._callbacks: Dict[int, Optional[Callable]] = {}
        self._started: Dict[int, float] = {}
        self._operations: Dict[int, Dict[str, Any]] = {}
        self._deadlines: Dict[int, bool] = {}
        self._out: EffectList = []

    @property
    def tracer(self):
        """The env's span emitter (the inert :data:`NO_TRACER` by default)."""
        return getattr(self.env, "tracer", NO_TRACER)

    # ------------------------------------------------------------------ #
    # Effect plumbing
    # ------------------------------------------------------------------ #
    def emit(self, effect) -> None:
        self._out.append(effect)

    def _drain(self) -> EffectList:
        effects, self._out = self._out, []
        return effects

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def on_message(self, message: Message, now: float) -> EffectList:
        """Entry point for replies from coordinators."""
        self.now = now
        if message.msg_type is MessageType.GET_REPLY:
            self._on_get_reply(message)
        elif message.msg_type is MessageType.PUT_REPLY:
            self._on_put_reply(message)
        elif message.msg_type is MessageType.ERROR_REPLY:
            self._on_error_reply(message)
        return self._drain()

    def on_timer(self, timer_id, now: float) -> EffectList:
        """Entry point for fired timers (client failover deadlines)."""
        self.now = now
        if timer_id[0] == "client":
            self._on_client_deadline(timer_id[1])
        return self._drain()

    def get(self, key: str, callback: Optional[Callable[[GetResult], None]],
            now: float) -> EffectList:
        """Issue a GET for ``key``; ``callback`` fires when the reply arrives.

        In async request mode a failed request (coordinator candidates
        exhausted, or an ``ERROR_REPLY``) invokes the callback with ``None``
        and records an ``ok=False`` :class:`RequestRecord`.
        """
        self.now = now
        self._issue(MessageType.COORDINATE_GET, "get", key,
                    payload={"key": key},
                    size_bytes=self.env.request_overhead_bytes,
                    callback=callback)
        return self._drain()

    def put(self, key: str, value: Any,
            callback: Optional[Callable[[PutResult], None]],
            now: float, use_context: bool = True) -> EffectList:
        """Issue a PUT for ``key``; ``callback`` fires when the reply arrives."""
        self.now = now
        context = self.session.last_context(key) if use_context else None
        sibling = self.session.prepare_write(key, value, context)
        context_bytes = (
            self.env.mechanism.context_bytes(context.mechanism_context)
            if context is not None else 0
        )
        self._issue(MessageType.COORDINATE_PUT, "put", key,
                    payload={
                        "key": key,
                        "sibling": sibling,
                        "context": context,
                        "client_id": self.client_id,
                    },
                    size_bytes=default_value_size(value) + context_bytes
                    + self.env.request_overhead_bytes,
                    callback=callback)
        return self._drain()

    # ------------------------------------------------------------------ #
    # Issuing requests
    # ------------------------------------------------------------------ #
    def _issue(self, msg_type: MessageType, operation: str, key: str,
               payload: Dict[str, Any], size_bytes: int,
               callback: Optional[Callable]) -> None:
        """Send a request to the first coordinator candidate.

        In membership mode the single candidate is the placement service's
        coordinator (first *active* replica).  In async mode the candidate
        list is the full extended preference list, walked with a client-side
        deadline per attempt: an unresponsive coordinator is failed over, and
        exhausting the list records the request as failed.
        """
        if self.env.request_mode == "async":
            candidates = self.env.placement.extended_preference_list(key)
        else:
            candidates = [self.env.placement.coordinator_for(key)]
        message = Message(
            sender=self.address,
            receiver=candidates[0],
            msg_type=msg_type,
            payload=payload,
            size_bytes=size_bytes,
        )
        span = None
        tracer = self.tracer
        if tracer.enabled:
            # The request's root span; the coordinator links under it via the
            # inert ``payload["trace"]`` context, so one trace id covers the
            # whole request across nodes (and across client failovers).
            span = tracer.start(
                f"client.{operation}", self.address, self.now,
                trace=f"{self.address}#{message.msg_id}",
                key=key, coordinator=candidates[0])
            payload["trace"] = span
        self._register(message, operation, key, callback)
        self._operations[message.msg_id].update({
            "candidates": candidates,
            "attempt": 0,
            "msg_type": msg_type,
            "payload": payload,
            "size_bytes": size_bytes,
            "span": span,
        })
        if self.env.request_mode == "async":
            self._arm_client_deadline(message.msg_id)
        self.emit(Send(message))

    def _register(self, message: Message, operation: str, key: str,
                  callback: Optional[Callable]) -> None:
        self._callbacks[message.msg_id] = callback
        self._started[message.msg_id] = self.now
        self._operations[message.msg_id] = {"operation": operation, "key": key}

    def _arm_client_deadline(self, request_id: int) -> None:
        self._deadlines[request_id] = True
        self.emit(SetTimer(
            ("client", request_id),
            self.env.client_timeout_ms,
            label=f"client-deadline:{self.client_id}",
        ))

    def _on_client_deadline(self, request_id: int) -> None:
        """No reply at all: fail over to the next candidate, or give up."""
        info = self._operations.get(request_id)
        self._deadlines.pop(request_id, None)
        if info is None:
            return  # a reply won the race
        attempt = info["attempt"] + 1
        candidates = info["candidates"]
        if attempt >= len(candidates):
            self._finish_failed(request_id, reason="timeout")
            return
        # Re-send the same logical request (same payload/sibling) to the next
        # candidate coordinator.  At-least-once caveat: if the silent
        # coordinator actually applied the put and only its reply was lost,
        # the retry's coordinator mints a second server-side dot over the
        # same causal past, and the value can survive as a duplicate sibling
        # — the standard Dynamo client-retry trade-off; nothing is lost.
        span = info.get("span")
        if span is not None and self.tracer.enabled:
            self.tracer.point("client.failover", self.address, self.now,
                              trace=span[0], parent=span[1],
                              abandoned=candidates[attempt - 1],
                              next=candidates[attempt])
        self._operations.pop(request_id, None)
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.now)
        message = Message(
            sender=self.address,
            receiver=candidates[attempt],
            msg_type=info["msg_type"],
            payload=info["payload"],
            size_bytes=info["size_bytes"],
        )
        self._callbacks[message.msg_id] = callback
        self._started[message.msg_id] = started
        retried = dict(info)
        retried["attempt"] = attempt
        self._operations[message.msg_id] = retried
        self._arm_client_deadline(message.msg_id)
        self.emit(Send(message))

    def _finish_failed(self, request_id: int, reason: str, coordinator: str = "") -> None:
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.now)
        if self._deadlines.pop(request_id, None):
            self.emit(ClearTimer(("client", request_id)))
        self._end_root_span(info, status=reason)
        self.records.append(RequestRecord(
            operation=info["operation"],
            key=info["key"],
            client_id=self.client_id,
            started_at=started,
            finished_at=self.now,
            ok=False,
            coordinator=coordinator,
            error=reason,
        ))
        if callback is not None:
            callback(None)

    def _end_root_span(self, info: Optional[Dict[str, Any]],
                       status: str) -> None:
        span = info.get("span") if info else None
        if span is not None and self.tracer.enabled:
            self.tracer.end(span, self.now, status=status)

    def _on_error_reply(self, message: Message) -> None:
        """The coordinator gave up (quorum infeasible / request deadline)."""
        self._finish_failed(
            message.request_id,
            reason=message.payload.get("reason", "error"),
            coordinator=message.payload.get("coordinator", ""),
        )

    # ------------------------------------------------------------------ #
    # Handling replies
    # ------------------------------------------------------------------ #
    def _on_get_reply(self, message: Message) -> None:
        request_id = message.request_id
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        if self._deadlines.pop(request_id, None):
            self.emit(ClearTimer(("client", request_id)))
        self._end_root_span(info, status="ok")
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.now)
        key = message.payload["key"]
        siblings = message.payload["siblings"]

        read = _SyntheticRead(siblings, message.payload["mechanism_context"])
        context = self.session.absorb_read(key, read, self.env.mechanism.name)
        result = GetResult(
            key=key,
            values=[s.value for s in siblings],
            siblings=list(siblings),
            context=context,
        )
        self.records.append(RequestRecord(
            operation="get",
            key=key,
            client_id=self.client_id,
            started_at=started,
            finished_at=self.now,
            ok=True,
            coordinator=message.payload["coordinator"],
            sibling_count=len(siblings),
            context_bytes=message.payload.get("context_bytes", 0),
        ))
        if callback is not None:
            callback(result)

    def _on_put_reply(self, message: Message) -> None:
        request_id = message.request_id
        info = self._operations.pop(request_id, None)
        if info is None:
            return
        if self._deadlines.pop(request_id, None):
            self.emit(ClearTimer(("client", request_id)))
        self._end_root_span(info, status="ok")
        callback = self._callbacks.pop(request_id, None)
        started = self._started.pop(request_id, self.now)
        key = message.payload["key"]

        # The put reply carries the post-write context (Riak's "return body"
        # mode); absorbing it keeps the session able to chain further writes.
        read = _SyntheticRead(message.payload["siblings"], message.payload["mechanism_context"])
        context = self.session.absorb_read(key, read, self.env.mechanism.name)
        result = PutResult(
            key=key,
            context=context,
            coordinator=message.payload["coordinator"],
            sibling=message.payload["sibling"],
        )
        self.records.append(RequestRecord(
            operation="put",
            key=key,
            client_id=self.client_id,
            started_at=started,
            finished_at=self.now,
            ok=True,
            coordinator=message.payload["coordinator"],
            sibling_count=len(message.payload["siblings"]),
            context_bytes=message.payload.get("context_bytes", 0),
        ))
        if callback is not None:
            callback(result)
