"""Transport-agnostic protocol state machines for the replicated KV store.

The request-handling core of the Dynamo-style protocol — coordination,
replica handlers, Merkle anti-entropy, hinted-handoff replay and the client
half — extracted from the simulated cluster into pure machines that consume
decoded messages and timer events and emit effects.  Both the deterministic
simulator (:mod:`repro.kvstore.simulated`) and the asyncio socket backend
(:mod:`repro.kvstore.asyncio_cluster`) drive these same objects; see
``ARCHITECTURE.md`` for the layering and how to add a third transport.
"""

from .anti_entropy import (
    DIGEST_BYTES,
    SYNC_MESSAGE_TYPES,
    AntiEntropyEngine,
    AntiEntropySession,
    MerkleSyncStats,
)
from .client import ClientProtocol, RequestRecord
from .coordinator import Coordinator, CoordinatorSession
from .effects import (
    ClearTimer,
    Effect,
    EffectList,
    EffectRunner,
    Send,
    SetTimer,
    TimerId,
)
from .env import DEADLINE_MODES, REQUEST_MODES, StaticProtocolEnv
from .hints import HintReplayer
from .latency import (
    ADAPTIVE_DEADLINE_MULTIPLIER,
    DEADLINE_EWMA_ALPHA,
    PeerLatencyTracker,
)
from .node import ProtocolNode
from .replica import ReplicaHandler
from .util import chunked, default_value_size

__all__ = [
    "ADAPTIVE_DEADLINE_MULTIPLIER",
    "AntiEntropyEngine",
    "AntiEntropySession",
    "ClearTimer",
    "ClientProtocol",
    "Coordinator",
    "CoordinatorSession",
    "DEADLINE_EWMA_ALPHA",
    "DEADLINE_MODES",
    "DIGEST_BYTES",
    "Effect",
    "EffectList",
    "EffectRunner",
    "HintReplayer",
    "MerkleSyncStats",
    "PeerLatencyTracker",
    "ProtocolNode",
    "REQUEST_MODES",
    "ReplicaHandler",
    "RequestRecord",
    "Send",
    "SetTimer",
    "StaticProtocolEnv",
    "SYNC_MESSAGE_TYPES",
    "TimerId",
    "chunked",
    "default_value_size",
]
