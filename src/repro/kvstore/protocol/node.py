"""One protocol node: storage plus the composed server-side state machines.

:class:`ProtocolNode` is what a backend hosts per storage server.  It owns the
durable :class:`~repro.kvstore.server.StorageNode` and the four protocol
machines — :class:`~repro.kvstore.protocol.coordinator.Coordinator`,
:class:`~repro.kvstore.protocol.replica.ReplicaHandler`,
:class:`~repro.kvstore.protocol.anti_entropy.AntiEntropyEngine` and
:class:`~repro.kvstore.protocol.hints.HintReplayer` — and routes decoded
messages, fired timers and daemon triggers to them.  Every entry point sets
the node's clock, runs the handler, and returns the effects the handler
emitted, in order.

The backend contract is small: deliver each inbound message via
:meth:`on_message`, feed timer firings back through :meth:`on_timer` (an
:class:`~repro.kvstore.protocol.effects.EffectRunner` does both bookkeeping
halves), call the daemon entry points on its own cadence, and execute every
returned effect list strictly in order.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ...network.message import Message, MessageType
from ...obs.trace import NO_TRACER
from ..server import StorageNode
from .anti_entropy import AntiEntropyEngine
from .coordinator import Coordinator
from .effects import Effect, EffectList
from .hints import HintReplayer
from .latency import PeerLatencyTracker
from .replica import ReplicaHandler
from .util import default_value_size


class ProtocolNode:
    """A storage server's protocol brain, independent of any transport."""

    def __init__(self, node_id: str, mechanism, env,
                 store: Optional[StorageNode] = None) -> None:
        self.node_id = node_id
        self.mechanism = mechanism
        self.env = env
        self.store = store if store is not None else StorageNode(
            node_id, mechanism, partition_map=env.placement.partition_map)
        #: The node's clock, set by the backend on every entry (simulated
        #: milliseconds or wall-clock milliseconds — the machines never ask).
        self.now = 0.0
        # Adaptive deadlines: EWMA of each replica's observed ack latency.
        self.latency = PeerLatencyTracker()
        self.coordinator = Coordinator(self)
        self.replica = ReplicaHandler(self)
        self.anti_entropy = AntiEntropyEngine(self)
        self.hints = HintReplayer(self)
        self._out: List[Effect] = []
        self._dispatch = {
            MessageType.COORDINATE_GET: self.coordinator.on_coordinate_get,
            MessageType.COORDINATE_PUT: self.coordinator.on_coordinate_put,
            MessageType.REPLICA_GET: self.replica.on_replica_get,
            MessageType.REPLICA_GET_REPLY: self.coordinator.on_replica_get_reply,
            MessageType.REPLICA_PUT: self.replica.on_replica_put,
            MessageType.REPLICA_PUT_ACK: self.coordinator.on_replica_put_ack,
            MessageType.READ_REPAIR: self.replica.on_read_repair,
            MessageType.SYNC_REQUEST: self.anti_entropy.on_sync_request,
            MessageType.SYNC_REPLY: self.anti_entropy.on_sync_reply,
            MessageType.MERKLE_PARTITION_DIGESTS:
                self.anti_entropy.on_merkle_partition_digests,
            MessageType.MERKLE_PARTITION_DIFF:
                self.anti_entropy.on_merkle_partition_diff,
            MessageType.MERKLE_SYNC_REQUEST:
                self.anti_entropy.on_merkle_sync_request,
            MessageType.MERKLE_SYNC_RESPONSE:
                self.anti_entropy.on_merkle_sync_response,
            MessageType.MERKLE_KEY_STATES: self.anti_entropy.on_merkle_key_states,
            MessageType.HINT_REPLAY: self.hints.on_hint_replay,
            MessageType.HINT_ACK: self.hints.on_hint_ack,
            MessageType.KEY_HANDOFF: self.replica.on_key_handoff,
            MessageType.PING: self.replica.on_ping,
        }

    @property
    def tracer(self):
        """The env's span emitter (the inert :data:`NO_TRACER` by default)."""
        return getattr(self.env, "tracer", NO_TRACER)

    # ------------------------------------------------------------------ #
    # Effect plumbing (machines call node.emit; entry points drain)
    # ------------------------------------------------------------------ #
    def emit(self, effect: Effect) -> None:
        self._out.append(effect)

    def _drain(self) -> EffectList:
        effects, self._out = self._out, []
        return effects

    # ------------------------------------------------------------------ #
    # Backend entry points
    # ------------------------------------------------------------------ #
    def on_message(self, message: Message, now: float) -> EffectList:
        """Handle one decoded inbound message; returns the emitted effects."""
        self.now = now
        handler = self._dispatch.get(message.msg_type)
        if handler is not None:
            handler(message)
        return self._drain()

    def on_timer(self, timer_id, now: float) -> EffectList:
        """Handle one fired timer (the id a SetTimer effect named)."""
        self.now = now
        kind = timer_id[0]
        if kind == "replica":
            self.coordinator.on_replica_deadline(timer_id[1], timer_id[2])
        elif kind == "request":
            self.coordinator.on_request_deadline(timer_id[1])
        elif kind == "repair-flush":
            self.coordinator.flush_all_read_repairs()
        return self._drain()

    # ------------------------------------------------------------------ #
    # Daemon triggers (anti-entropy ticks, hint replay, rebalancing)
    # ------------------------------------------------------------------ #
    def start_merkle_sync_with(self, peer_id: str, now: float) -> EffectList:
        self.now = now
        self.anti_entropy.start_merkle_sync_with(peer_id)
        return self._drain()

    def start_sync_with(self, peer_id: str, now: float) -> EffectList:
        self.now = now
        self.anti_entropy.start_sync_with(peer_id)
        return self._drain()

    def replay_hints(self, now: float) -> Tuple[EffectList, int]:
        """Hint-replay tick; returns (effects, number of batches emitted)."""
        self.now = now
        batches = self.hints.replay_hints()
        return self._drain(), batches

    def send_key_handoff(self, target_id: str, keys: Sequence[str],
                         now: float) -> EffectList:
        self.now = now
        self.anti_entropy.send_key_handoff(target_id, keys)
        return self._drain()

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def on_recover(self, wipe: bool,
                   wipe_partitions: Optional[Sequence[int]] = None) -> None:
        """Recover from a crash: disk handling plus process-memory cleanup.

        The disk either survived (restart: the Merkle index is rebuilt from
        it, per non-empty vnode — or adopted as-is after a clean shutdown),
        did not (``wipe``: storage and index are emptied), or lost only some
        vnodes' slices (``wipe_partitions``: those ranges' states, hints and
        trees are dropped, the rest survive and keep their maintained
        digests).  Process memory died either way: queued read-repair pushes,
        in-flight Merkle exchange snapshots, hint-replay backoff and the
        replica-latency EWMAs are discarded here — any new process state
        added to the machines that should not survive a crash belongs in
        their ``on_recover`` hooks.
        """
        if wipe:
            self.store.wipe()
        else:
            for partition_id in wipe_partitions or ():
                self.store.wipe(partition=partition_id)
            self.store.restart()
        self.coordinator.on_recover()
        self.anti_entropy.on_recover()
        self.hints.on_recover()
        self.latency.clear()

    # ------------------------------------------------------------------ #
    # Sizing helpers (message accounting shared by all machines)
    # ------------------------------------------------------------------ #
    def state_size(self, key: str, state: Any) -> int:
        return self.payload_state_size(key, state) + self.env.request_overhead_bytes

    def payload_state_size(self, key: str, state: Any) -> int:
        metadata = self.mechanism.metadata_bytes(state)
        values = sum(default_value_size(s.value)
                     for s in self.mechanism.siblings(state))
        return metadata + values
