"""Replica-side handlers: serve reads, apply writes, absorb repairs/handoffs.

The stateless half of the protocol — every handler answers one message from
local storage and emits at most one reply.  Shared by both backends through
:class:`~repro.kvstore.protocol.node.ProtocolNode`.
"""

from __future__ import annotations

from ...network.message import Message, MessageType
from .effects import Send


class ReplicaHandler:
    """Replica-local message handlers of one node."""

    def __init__(self, node) -> None:
        self._node = node

    def on_replica_get(self, message: Message) -> None:
        node = self._node
        key = message.payload["key"]
        state = node.store.state_of(key)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=message.sender,
            msg_type=MessageType.REPLICA_GET_REPLY,
            payload={
                "key": key,
                "state": state,
                "coordination_id": message.payload["coordination_id"],
            },
            size_bytes=node.state_size(key, state),
            request_id=message.request_id,
        )))

    def on_replica_put(self, message: Message) -> None:
        node = self._node
        key = message.payload["key"]
        # Sloppy-quorum handoff: a fallback accepting a write on behalf of a
        # timed-out primary also persists a hint naming that primary, so the
        # handoff daemon can return the data once the primary is back.
        hint_for = message.payload.get("hint_for")
        if (hint_for is not None and hint_for != node.node_id
                and node.env.hinted_handoff_enabled):
            hint_ref = None
            tracer = node.tracer
            if tracer.enabled:
                ctx = message.payload.get("trace")
                if ctx:
                    hint_ref = tracer.point(
                        "hint.stored", node.node_id, node.now,
                        trace=ctx[0], parent=ctx[1], target=hint_for, key=key)
            node.store.store_hint(hint_for, key, message.payload["state"],
                                  trace=hint_ref)
        node.store.local_merge(key, message.payload["state"])
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=message.sender,
            msg_type=MessageType.REPLICA_PUT_ACK,
            payload={"key": key, "coordination_id": message.payload["coordination_id"]},
            size_bytes=node.env.request_overhead_bytes,
            request_id=message.request_id,
        )))

    def on_read_repair(self, message: Message) -> None:
        for key, state in message.payload["states"].items():
            self._node.store.local_merge(key, state)

    def on_key_handoff(self, message: Message) -> None:
        fingerprints = message.payload.get("fingerprints") or {}
        for key, state in message.payload["states"].items():
            self._node.store.ingest_handoff(key, state, fingerprints.get(key))

    def on_ping(self, message: Message) -> None:
        self._node.emit(Send(message.reply(MessageType.PONG)))
