"""Hinted-handoff replay machine with EWMA-driven backoff.

A node holding hints replays them to their targets in ``HINT_REPLAY`` batches
and clears them on ``HINT_ACK`` — lost replays are simply retried on a later
tick, and merges are idempotent, so re-sent hints are harmless.

Replay targeting consults the node's per-replica latency EWMAs (the same
tracker the coordinator's adaptive deadlines use): a **persistently slow**
peer — one whose EWMA-derived deadline clamps at the configured ceiling — is
replayed to once and then backed off for ``ewma × hint_backoff_multiplier``
instead of being hammered on the daemon's fixed cadence, since batches to it
are usually still in flight when the next tick comes around.  Deferred ticks
are counted in the node's ``hint_replays_deferred`` stat.  Peers with healthy
round trips are unaffected, and a peer with no observations is never deferred.
"""

from __future__ import annotations

from typing import Dict

from ...network.message import Message, MessageType
from .effects import Send
from .util import chunked


class HintReplayer:
    """Per-node replay of locally held hints toward recovered targets."""

    def __init__(self, node) -> None:
        self._node = node
        #: target -> earliest time the next replay to it may run (backoff for
        #: persistently slow peers).  Process memory: cleared on crash.
        self.next_attempt: Dict[str, float] = {}

    def replay_hints(self) -> int:
        """Emit HINT_REPLAY batches for every reachable, non-deferred target.

        Returns the number of batches emitted.  Hints are only cleared when
        the target acknowledges, so lost replays are retried on a later tick.
        """
        node = self._node
        env = node.env
        batches = 0
        for target_id in node.store.hint_targets():
            if not env.can_reach(node.node_id, target_id):
                continue
            if node.now < self.next_attempt.get(target_id, 0.0):
                node.store.stats["hint_replays_deferred"] += 1
                continue
            if node.latency.is_slow(target_id, env.deadline_ceiling_ms):
                # Replay once, then leave the slow peer alone long enough for
                # this batch to land (several of its round trips).
                self.next_attempt[target_id] = (
                    node.now
                    + node.latency.ewma[target_id] * env.hint_backoff_multiplier
                )
            hints = node.store.hints_for(target_id)
            tracer = node.tracer
            for chunk in chunked(hints, env.sync_batch_size):
                if tracer.enabled:
                    # Close the loop of each hint's originating request: the
                    # replay appears in the span tree of the write that
                    # stored the hint, however many ticks later it runs.
                    for hint in chunk:
                        if hint.trace is not None:
                            tracer.point("hint.replay", node.node_id, node.now,
                                         trace=hint.trace[0],
                                         parent=hint.trace[1],
                                         target=target_id, key=hint.key)
                payload_hints = [(hint.hint_id, hint.key, hint.state) for hint in chunk]
                size = (sum(node.payload_state_size(hint.key, hint.state)
                            for hint in chunk)
                        + env.request_overhead_bytes)
                node.emit(Send(Message(
                    sender=node.node_id,
                    receiver=target_id,
                    msg_type=MessageType.HINT_REPLAY,
                    payload={"hints": payload_hints},
                    size_bytes=size,
                )))
                batches += 1
        return batches

    def on_hint_replay(self, message: Message) -> None:
        node = self._node
        hint_ids = []
        for hint_id, key, state in message.payload["hints"]:
            node.store.local_merge(key, state, reason="hint")
            hint_ids.append(hint_id)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=message.sender,
            msg_type=MessageType.HINT_ACK,
            payload={"hint_ids": hint_ids},
            size_bytes=node.env.request_overhead_bytes,
        )))

    def on_hint_ack(self, message: Message) -> None:
        self._node.store.clear_hints(message.sender, message.payload["hint_ids"])

    def on_recover(self) -> None:
        """Forget backoff state (process memory died with the crash)."""
        self.next_attempt.clear()
