"""Effects: the only way protocol state machines touch the outside world.

The state machines in this package (:mod:`~repro.kvstore.protocol.coordinator`,
:mod:`~repro.kvstore.protocol.replica`, :mod:`~repro.kvstore.protocol.anti_entropy`,
:mod:`~repro.kvstore.protocol.hints`, :mod:`~repro.kvstore.protocol.client`)
never send a message or arm a timer themselves.  Each entry point — a decoded
message, a fired timer, a daemon trigger — returns a list of *effects*, plain
data describing what the surrounding backend should do:

* :class:`Send` — put a :class:`~repro.network.message.Message` on the wire;
* :class:`SetTimer` — arm a named timer ``delay_ms`` from now (the machine
  names its timers; it never sees backend timer handles);
* :class:`ClearTimer` — disarm a named timer if it is still armed.

Because effects are data, the machines can be driven with no transport at all
(scripted tests assert on the returned lists), by the deterministic simulator
(:mod:`repro.kvstore.simulated`), or by the asyncio socket backend
(:mod:`repro.kvstore.asyncio_cluster`) — with zero protocol logic duplicated.

:class:`EffectRunner` is the shared interpreter: it executes effect lists
against anything satisfying the transport contract of
:mod:`repro.network.base`, keeps the timer-id → backend-handle map, and feeds
timer firings back into the machine.  Effect order is significant — backends
must execute a list strictly in order, because the deterministic simulator's
reproducibility (and therefore the equivalence suite) depends on sends and
timer arms hitting the event queue exactly as the pre-extraction code issued
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from ...network.message import Message

#: Timers are named by the machine that arms them.  Ids are tuples so they
#: stay hashable and self-describing, e.g. ``("replica", 7, "B")`` for the
#: per-replica ack deadline of coordination 7 on replica B.
TimerId = Tuple

#: Timer kinds: ``"deadline"`` timers are failure-detection deadlines and are
#: counted in the transport's deadline statistics; ``"task"`` timers are
#: ordinary scheduled work (e.g. the read-repair coalescing flush).
TIMER_KINDS = ("deadline", "task")


@dataclass
class Send:
    """Put ``message`` on the wire (delivery semantics are the backend's)."""

    message: Message


@dataclass
class SetTimer:
    """Arm a named timer ``delay_ms`` from now.

    When it fires, the backend must call the owning machine's ``on_timer``
    with ``timer_id`` and execute the returned effects.  Arming an id that is
    already armed is a protocol bug; machines always clear first.
    """

    timer_id: TimerId
    delay_ms: float
    kind: str = "deadline"
    label: str = "timer"


@dataclass
class ClearTimer:
    """Disarm ``timer_id`` if it is still armed (no-op otherwise)."""

    timer_id: TimerId


Effect = Union[Send, SetTimer, ClearTimer]
EffectList = List[Effect]


class EffectRunner:
    """Executes effect lists against a backend transport.

    Parameters
    ----------
    transport:
        Anything with the :mod:`repro.network.base` transport contract:
        ``send(message)``, ``schedule_deadline(delay_ms, callback, label)``,
        ``cancel_deadline(handle)``, ``schedule_task(delay_ms, callback,
        label)``, ``cancel_task(handle)`` and ``now_ms()``.
    on_timer:
        Callback into the owning machine: ``on_timer(timer_id, now_ms) ->
        EffectList``.  The runner executes whatever it returns, so timer
        cascades (a deadline firing arms the next fallback's deadline) need no
        backend involvement.
    """

    def __init__(self,
                 transport,
                 on_timer: Callable[[TimerId, float], EffectList]) -> None:
        self._transport = transport
        self._on_timer = on_timer
        self._timers: Dict[TimerId, Tuple[str, object]] = {}

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, effects: EffectList) -> None:
        """Execute ``effects`` strictly in order."""
        for effect in effects:
            if isinstance(effect, Send):
                self._transport.send(effect.message)
            elif isinstance(effect, SetTimer):
                self._set_timer(effect)
            elif isinstance(effect, ClearTimer):
                self._clear_timer(effect.timer_id)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown effect {effect!r}")

    def _set_timer(self, effect: SetTimer) -> None:
        timer_id = effect.timer_id

        def fire() -> None:
            # The timer is no longer armed once it fires; forget it before
            # re-entering the machine so a ClearTimer for it is a no-op.
            self._timers.pop(timer_id, None)
            self.run(self._on_timer(timer_id, self._transport.now_ms()))

        if effect.kind == "deadline":
            handle = self._transport.schedule_deadline(effect.delay_ms, fire,
                                                       label=effect.label)
        else:
            handle = self._transport.schedule_task(effect.delay_ms, fire,
                                                   label=effect.label)
        self._timers[timer_id] = (effect.kind, handle)

    def _clear_timer(self, timer_id: TimerId) -> None:
        entry = self._timers.pop(timer_id, None)
        if entry is None:
            return
        kind, handle = entry
        if kind == "deadline":
            self._transport.cancel_deadline(handle)
        else:
            self._transport.cancel_task(handle)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def armed_timers(self) -> List[TimerId]:
        """Ids of currently armed timers (diagnostics and tests)."""
        return list(self._timers)

    def cancel_all(self) -> None:
        """Disarm every armed timer (backend shutdown/crash cleanup)."""
        for timer_id in list(self._timers):
            self._clear_timer(timer_id)
