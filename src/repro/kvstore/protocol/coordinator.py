"""Coordinator state machine: quorum GET/PUT, deadlines, fallbacks, read repair.

This is the request-handling half of the Dynamo-style protocol, extracted from
the simulated cluster into a transport-agnostic machine.  One
:class:`Coordinator` lives on each :class:`~repro.kvstore.protocol.node.ProtocolNode`
and tracks a :class:`CoordinatorSession` per in-flight client request.  Every
handler consumes a decoded message or a fired timer and *emits effects*
(:class:`~repro.kvstore.protocol.effects.Send` /
:class:`~repro.kvstore.protocol.effects.SetTimer` /
:class:`~repro.kvstore.protocol.effects.ClearTimer`) through the owning node;
it never touches a transport or an event loop.

Two coordination modes exist (``env.request_mode``):

* ``"membership"`` — the coordinator consults the membership view's failure
  detector (``placement.active_replicas``) to decide whom to contact and for
  whom to hold hints.
* ``"async"`` — Dynamo-style timeout-driven coordination: fan out to the
  key's N *primary* replicas regardless of the membership view, arm a
  per-replica deadline, and collect R/W acks.  A replica whose deadline fires
  under a **sloppy** quorum is replaced by the next node on the ring, which
  accepts the write together with a hint naming the intended primary; a
  strict quorum (or an exhausted ring) holds the hint locally and fails the
  request with ``ERROR_REPLY`` once the quorum is infeasible or the overall
  request deadline fires.

Timer ids armed by this machine:

* ``("replica", coordination_id, replica_id)`` — one contacted replica's ack
  deadline;
* ``("request", coordination_id)`` — the overall request deadline;
* ``("repair-flush",)`` — the read-repair coalescing window ("task" kind: it
  is scheduled work, not a failure-detection deadline).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...clocks.interface import Sibling
from ...network.message import Message, MessageType
from ..read_repair import ReadRepairStats, plan_read_repair
from .effects import ClearTimer, Send, SetTimer
from .util import default_value_size


@dataclass
class CoordinatorSession:
    """Coordinator-side bookkeeping for one in-flight client request."""

    kind: str                       # "get" or "put"
    key: str
    client_address: str
    request_id: int
    needed: int
    replies: List = field(default_factory=list)
    replied_nodes: List[str] = field(default_factory=list)
    done: bool = False
    # put-only fields
    new_state: Any = None
    sibling: Optional[Sibling] = None
    # async-mode fields
    mode: str = "membership"
    tried: List[str] = field(default_factory=list)       # every node contacted
    timed_out: List[str] = field(default_factory=list)
    #: replica -> True while its ack deadline is armed.  The machine only
    #: tracks *that* a timer is armed; the backend holds the actual handle.
    deadlines: Dict[str, bool] = field(default_factory=dict)
    sent_at: Dict[str, float] = field(default_factory=dict)   # replica -> send time
    request_deadline: bool = False
    #: fallback -> the primary it stands in for (hint chains survive
    #: a fallback itself timing out).
    standing_in: Dict[str, str] = field(default_factory=dict)
    #: tracing (inert unless a tracer is installed): the coordinator span's
    #: ``(trace_id, span_id)`` reference, and one open span per contacted
    #: replica awaiting its ack/deadline.
    trace: Any = None
    replica_spans: Dict[str, Any] = field(default_factory=dict)


class Coordinator:
    """Per-node coordination machine (one session per in-flight request)."""

    def __init__(self, node) -> None:
        self._node = node
        self.sessions: Dict[int, CoordinatorSession] = {}
        self._request_ids = itertools.count(1)
        self.read_repair_stats = ReadRepairStats()
        # Read-repair pushes are coalesced per target replica (mirroring
        # MERKLE_KEY_STATES batching): repairs queue here and flush as one
        # READ_REPAIR message per target when the batch fills or the
        # coalescing window closes.
        self.repair_queue: Dict[str, Dict[str, Any]] = {}
        self._repair_flush_scheduled = False

    # ------------------------------------------------------------------ #
    # Tracing (every helper is a no-op without an installed tracer; span
    # events go straight to the sink, never through the effect system, so
    # tracing cannot perturb coordination)
    # ------------------------------------------------------------------ #
    def _trace_begin(self, pending: CoordinatorSession, message: Message) -> None:
        """Open the coordinator span, linked under the client's root span."""
        node = self._node
        tracer = node.tracer
        if not tracer.enabled:
            return
        ctx = message.payload.get("trace")
        trace_id = ctx[0] if ctx else f"{message.sender}#{message.msg_id}"
        parent = ctx[1] if ctx else None
        pending.trace = tracer.start(
            f"coordinator.{pending.kind}", node.node_id, node.now,
            trace=trace_id, parent=parent, key=pending.key, mode=pending.mode)

    def _trace_replica(self, pending: CoordinatorSession, replica_id: str,
                       hint_for: Optional[str] = None):
        """Open one contacted replica's span (fan-out / fallback contact)."""
        node = self._node
        tracer = node.tracer
        if not tracer.enabled or pending.trace is None:
            return None
        attrs: Dict[str, Any] = {"replica": replica_id}
        if hint_for is not None:
            attrs["hint_for"] = hint_for
        ref = tracer.start(
            f"replica.{pending.kind}", node.node_id, node.now,
            trace=pending.trace[0], parent=pending.trace[1], **attrs)
        pending.replica_spans[replica_id] = ref
        return ref

    def _trace_replica_end(self, pending: CoordinatorSession,
                           replica_id: str, status: str) -> None:
        ref = pending.replica_spans.pop(replica_id, None)
        if ref is not None:
            self._node.tracer.end(ref, self._node.now, status=status)

    def _trace_end_replicas(self, pending: CoordinatorSession,
                            status: str) -> None:
        """Close every still-open replica span (session is being dropped)."""
        if not pending.replica_spans:
            return
        tracer = self._node.tracer
        if tracer.enabled:
            for ref in pending.replica_spans.values():
                tracer.end(ref, self._node.now, status=status)
        pending.replica_spans.clear()

    def _trace_end_session(self, pending: CoordinatorSession, status: str,
                           **attrs: Any) -> None:
        if pending.trace is not None:
            tracer = self._node.tracer
            if tracer.enabled:
                tracer.end(pending.trace, self._node.now, status=status, **attrs)

    def _trace_point(self, pending: CoordinatorSession, name: str,
                     **attrs: Any):
        node = self._node
        tracer = node.tracer
        if not tracer.enabled or pending.trace is None:
            return None
        return tracer.point(name, node.node_id, node.now,
                            trace=pending.trace[0], parent=pending.trace[1],
                            **attrs)

    def _store_hint_traced(self, pending: Optional[CoordinatorSession],
                           primary_id: str, key: str, state: Any) -> None:
        """Hold a hint locally, marking it in the request's span tree."""
        hint_ref = None
        if pending is not None:
            hint_ref = self._trace_point(pending, "hint.stored",
                                         target=primary_id, key=key)
        self._node.store.store_hint(primary_id, key, state, trace=hint_ref)

    # ------------------------------------------------------------------ #
    # Coordinating a GET
    # ------------------------------------------------------------------ #
    def on_coordinate_get(self, message: Message) -> None:
        node = self._node
        env = node.env
        key = message.payload["key"]
        config = env.quorum
        if env.request_mode == "async":
            self._coordinate_get_async(message, key)
            return
        replicas = env.placement.active_replicas(key)
        request_id = next(self._request_ids)
        pending = CoordinatorSession(
            kind="get",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.r, max(len(replicas), 1)),
        )
        self.sessions[request_id] = pending
        self._trace_begin(pending, message)

        # The coordinator replies for itself immediately (no network hop).
        pending.replies.append((node.node_id, node.store.state_of(key)))
        pending.replied_nodes.append(node.node_id)

        for replica_id in replicas:
            if replica_id == node.node_id:
                continue
            self._trace_replica(pending, replica_id)
            node.emit(Send(Message(
                sender=node.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_GET,
                payload={"key": key, "coordination_id": request_id},
                size_bytes=env.request_overhead_bytes,
                request_id=request_id,
            )))
        self._maybe_finish_get(request_id)

    def _coordinate_get_async(self, message: Message, key: str) -> None:
        """Deadline-driven GET: fan out to the primaries, extend on timeout."""
        node = self._node
        env = node.env
        config = env.quorum
        extended = env.placement.extended_preference_list(key)
        request_id = next(self._request_ids)
        pending = CoordinatorSession(
            kind="get",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.r, max(len(extended), 1)),
            mode="async",
        )
        self.sessions[request_id] = pending
        self._trace_begin(pending, message)
        pending.tried.append(node.node_id)
        primaries = env.placement.primary_replicas(key)
        # The coordinator's own state only counts toward R when it is one of
        # the key's replica homes — or, under a sloppy quorum, as a fallback
        # read (the client failed over to it, so it stands in the extended
        # top-N); a strict quorum accepts replies from primaries only.
        if node.node_id in primaries or config.sloppy:
            pending.replies.append((node.node_id, node.store.state_of(key)))
            pending.replied_nodes.append(node.node_id)
        for replica_id in primaries:
            if replica_id == node.node_id:
                continue
            self._send_async_replica_request(request_id, pending, replica_id)
        self._arm_request_deadline(request_id, pending)
        self._maybe_finish_get(request_id)

    def on_replica_get_reply(self, message: Message) -> None:
        coordination_id = message.payload["coordination_id"]
        pending = self.sessions.get(coordination_id)
        if pending is None or pending.done or pending.kind != "get":
            return
        if message.sender in pending.replied_nodes:
            return  # duplicate delivery
        self._observe_ack_latency(pending, message.sender)
        self._trace_replica_end(pending, message.sender, "ok")
        if pending.deadlines.pop(message.sender, None):
            self._node.emit(ClearTimer(("replica", coordination_id, message.sender)))
        pending.replies.append((message.sender, message.payload["state"]))
        pending.replied_nodes.append(message.sender)
        self._maybe_finish_get(coordination_id)

    def _maybe_finish_get(self, coordination_id: int) -> None:
        node = self._node
        env = node.env
        pending = self.sessions.get(coordination_id)
        if pending is None or pending.done:
            return
        if len(pending.replies) < pending.needed:
            return
        pending.done = True
        self._cancel_pending_timers(coordination_id, pending)

        plan = plan_read_repair(node.mechanism, pending.replies)
        self.read_repair_stats.record(plan)
        merged_state = plan.merged_state
        # The coordinator keeps the merged state (it is one of the replicas).
        node.store.local_merge(pending.key, merged_state)
        read = node.mechanism.read(node.store.state_of(pending.key))

        # Repair the stale replicas in the background (coalesced per target).
        for replica_id in plan.stale_replicas:
            if replica_id == node.node_id:
                continue
            self._trace_point(pending, "read_repair.queued",
                              target=replica_id, key=pending.key)
            self.queue_read_repair(replica_id, pending.key, merged_state)

        context_bytes = node.mechanism.context_bytes(read.context)
        values_bytes = sum(default_value_size(s.value) for s in read.siblings)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.GET_REPLY,
            payload={
                "key": pending.key,
                "siblings": list(read.siblings),
                "mechanism_context": read.context,
                "coordinator": node.node_id,
                "context_bytes": context_bytes,
            },
            size_bytes=values_bytes + context_bytes + env.request_overhead_bytes,
            request_id=pending.request_id,
        )))
        self._trace_end_session(pending, "ok", replies=len(pending.replies),
                                stale=len(plan.stale_replicas))
        self.sessions.pop(coordination_id, None)

    # ------------------------------------------------------------------ #
    # Coordinating a PUT
    # ------------------------------------------------------------------ #
    def on_coordinate_put(self, message: Message) -> None:
        node = self._node
        env = node.env
        key = message.payload["key"]
        sibling: Sibling = message.payload["sibling"]
        context = message.payload.get("context")
        client_id = message.payload["client_id"]
        config = env.quorum
        replicas = env.placement.active_replicas(key)

        new_state = node.store.local_write(key, context, sibling, client_id)
        env.write_log.append(key, sibling, node.node_id, client_id, node.now)
        if env.request_mode == "async":
            self._coordinate_put_async(message, key, sibling, new_state)
            return

        request_id = next(self._request_ids)
        pending = CoordinatorSession(
            kind="put",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.w, max(len(replicas), 1)),
            new_state=new_state,
            sibling=sibling,
        )
        self.sessions[request_id] = pending
        self._trace_begin(pending, message)
        pending.replies.append((node.node_id, True))
        pending.replied_nodes.append(node.node_id)

        for replica_id in replicas:
            if replica_id == node.node_id:
                continue
            self._trace_replica(pending, replica_id)
            node.emit(Send(Message(
                sender=node.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_PUT,
                payload={"key": key, "state": new_state, "coordination_id": request_id},
                size_bytes=node.state_size(key, new_state),
                request_id=request_id,
            )))
        # Hinted handoff: primaries this coordinator cannot reach right now
        # (crashed, or cut off by a partition) get the write held as a hint,
        # replayed by the handoff daemon once they are reachable again.
        if env.hinted_handoff_enabled:
            for primary_id in env.placement.primary_replicas(key):
                if primary_id == node.node_id:
                    continue
                if not env.can_reach(node.node_id, primary_id):
                    self._store_hint_traced(pending, primary_id, key, new_state)
        self._maybe_finish_put(request_id)

    def _coordinate_put_async(self, message: Message, key: str,
                              sibling: Sibling, new_state: Any) -> None:
        """Deadline-driven PUT: fan out to the primaries, collect W acks.

        The membership view is not consulted; a primary that does not ack
        before its deadline is treated as failed, and a sloppy quorum extends
        the preference list to the next ring node, which accepts the write
        together with a hint naming the intended primary.
        """
        node = self._node
        env = node.env
        config = env.quorum
        extended = env.placement.extended_preference_list(key)
        request_id = next(self._request_ids)
        pending = CoordinatorSession(
            kind="put",
            key=key,
            client_address=message.sender,
            request_id=message.msg_id,
            needed=min(config.w, max(len(extended), 1)),
            new_state=new_state,
            sibling=sibling,
            mode="async",
        )
        self.sessions[request_id] = pending
        self._trace_begin(pending, message)
        pending.tried.append(node.node_id)
        primaries = env.placement.primary_replicas(key)
        if node.node_id in primaries:
            pending.replies.append((node.node_id, True))
            pending.replied_nodes.append(node.node_id)
        elif config.sloppy:
            # The client failed over to a non-home coordinator: under a
            # sloppy quorum its local copy counts as a fallback ack, and like
            # any fallback it holds a hint so the write reaches a primary.
            if env.hinted_handoff_enabled:
                self._store_hint_traced(pending, primaries[0], key, new_state)
            pending.replies.append((node.node_id, True))
            pending.replied_nodes.append(node.node_id)
        # (strict quorum on a non-home coordinator: only primary acks count)
        for replica_id in primaries:
            if replica_id == node.node_id:
                continue
            self._send_async_replica_request(request_id, pending, replica_id)
        self._arm_request_deadline(request_id, pending)
        self._maybe_finish_put(request_id)

    # ------------------------------------------------------------------ #
    # Async request mode: deadlines, fallbacks, failure replies
    # ------------------------------------------------------------------ #
    def _send_async_replica_request(self, coordination_id: int,
                                    pending: CoordinatorSession,
                                    replica_id: str,
                                    hint_for: Optional[str] = None) -> None:
        """Contact one replica (primary or fallback) and arm its deadline."""
        node = self._node
        env = node.env
        pending.tried.append(replica_id)
        if hint_for is not None:
            pending.standing_in[replica_id] = hint_for
        ref = self._trace_replica(pending, replica_id, hint_for=hint_for)
        if pending.kind == "put":
            payload = {"key": pending.key, "state": pending.new_state,
                       "coordination_id": coordination_id}
            if hint_for is not None:
                payload["hint_for"] = hint_for
            if ref is not None:
                # Propagate span context on the wire so a fallback replica
                # can parent its own hint.stored point under this contact.
                payload["trace"] = ref
            message = Message(
                sender=node.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_PUT,
                payload=payload,
                size_bytes=node.state_size(pending.key, pending.new_state),
                request_id=coordination_id,
            )
        else:
            message = Message(
                sender=node.node_id,
                receiver=replica_id,
                msg_type=MessageType.REPLICA_GET,
                payload={"key": pending.key, "coordination_id": coordination_id},
                size_bytes=env.request_overhead_bytes,
                request_id=coordination_id,
            )
        node.emit(Send(message))
        pending.sent_at[replica_id] = node.now
        pending.deadlines[replica_id] = True
        node.emit(SetTimer(
            ("replica", coordination_id, replica_id),
            self.replica_deadline_ms(replica_id),
            label=f"replica-deadline:{pending.kind}:{replica_id}",
        ))

    def replica_deadline_ms(self, replica_id: str) -> float:
        """How long to wait for this replica's ack before giving up on it."""
        env = self._node.env
        return self._node.latency.deadline_ms(
            replica_id,
            mode=env.deadline_mode,
            fixed_ms=env.replica_timeout_ms,
            floor_ms=env.deadline_floor_ms,
            ceiling_ms=env.deadline_ceiling_ms,
        )

    def _observe_ack_latency(self, pending: CoordinatorSession,
                             replica_id: str) -> None:
        """Fold one observed ack round trip into the replica's latency EWMA."""
        sent_at = pending.sent_at.pop(replica_id, None)
        if sent_at is None:
            return
        self._node.latency.observe(replica_id, self._node.now - sent_at)

    def _arm_request_deadline(self, coordination_id: int,
                              pending: CoordinatorSession) -> None:
        pending.request_deadline = True
        self._node.emit(SetTimer(
            ("request", coordination_id),
            self._node.env.request_timeout_ms,
            label=f"request-deadline:{pending.kind}:{pending.key}",
        ))

    def on_replica_deadline(self, coordination_id: int, replica_id: str) -> None:
        """A contacted replica missed its deadline: extend or give up on it.

        Handoff outlives the client's answer: for a put whose quorum already
        completed, a timed-out primary is still chained to a fallback (or
        covered by a coordinator-held hint), so the write keeps moving toward
        all N replica homes.
        """
        node = self._node
        env = node.env
        pending = self.sessions.get(coordination_id)
        if pending is None:
            return
        pending.deadlines.pop(replica_id, None)
        if replica_id in pending.replied_nodes:
            self._cleanup_if_settled(coordination_id, pending)
            return
        pending.timed_out.append(replica_id)
        self._trace_replica_end(pending, replica_id, "timeout")
        # The primary this contact was (transitively) standing in for.
        primary = pending.standing_in.get(replica_id, replica_id)
        extend = env.quorum.sloppy and (pending.kind == "put" or not pending.done)
        if extend:
            # ``near`` prefers same-DC stand-ins on multi-DC topologies (the
            # per-DC sloppy quorum); without a topology it is a no-op.
            candidates = env.placement.fallbacks_for(pending.key,
                                                     exclude=pending.tried,
                                                     near=node.node_id)
            fallback = candidates[0] if candidates else None
            if fallback is not None:
                self._trace_point(pending, "fallback.promotion",
                                  primary=primary, fallback=fallback)
                self._send_async_replica_request(coordination_id, pending, fallback,
                                                 hint_for=primary if pending.kind == "put" else None)
                return
        # Strict quorum (or ring exhausted): hold the write locally so the
        # primary still converges once it is reachable again.
        if (pending.kind == "put" and env.hinted_handoff_enabled
                and primary != node.node_id):
            self._store_hint_traced(pending, primary, pending.key,
                                    pending.new_state)
        if not pending.done:
            possible = len(pending.replies) + len(pending.deadlines)
            if possible < pending.needed:
                self._fail_request(coordination_id, reason="quorum_unreachable")
                return
        self._cleanup_if_settled(coordination_id, pending)

    def on_request_deadline(self, coordination_id: int) -> None:
        pending = self.sessions.get(coordination_id)
        if pending is None or pending.done:
            return
        # This timer just fired; forget it so _fail_request's timer sweep
        # does not also try to cancel it.
        pending.request_deadline = False
        self._fail_request(coordination_id, reason="request_timeout")

    def _fail_request(self, coordination_id: int, reason: str) -> None:
        """Answer the client with ERROR_REPLY and drop the coordination state.

        The coordinator's local write (and any hints already held) stay in
        place — a failed quorum write may still be partially applied, exactly
        as in Dynamo; anti-entropy and hint replay eventually spread it.
        """
        node = self._node
        pending = self.sessions.pop(coordination_id, None)
        if pending is None or pending.done:
            return
        pending.done = True
        self._cancel_pending_timers(coordination_id, pending)
        self._trace_end_session(pending, reason)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.ERROR_REPLY,
            payload={"key": pending.key, "operation": pending.kind,
                     "reason": reason, "coordinator": node.node_id},
            size_bytes=node.env.request_overhead_bytes,
            request_id=pending.request_id,
        )))

    def _cancel_pending_timers(self, coordination_id: int,
                               pending: CoordinatorSession) -> None:
        for replica_id in pending.deadlines:
            self._node.emit(ClearTimer(("replica", coordination_id, replica_id)))
        pending.deadlines.clear()
        if pending.request_deadline:
            self._node.emit(ClearTimer(("request", coordination_id)))
            pending.request_deadline = False
        # Replicas no longer awaited (quorum met or request failed): close
        # their spans so the tree has no dangling opens.
        self._trace_end_replicas(pending, "cancelled")

    # ------------------------------------------------------------------ #
    # Replica-side acks
    # ------------------------------------------------------------------ #
    def on_replica_put_ack(self, message: Message) -> None:
        coordination_id = message.payload["coordination_id"]
        pending = self.sessions.get(coordination_id)
        if pending is None or pending.kind != "put":
            return
        if message.sender in pending.replied_nodes:
            return  # duplicate delivery
        self._observe_ack_latency(pending, message.sender)
        self._trace_replica_end(pending, message.sender, "ok")
        if pending.deadlines.pop(message.sender, None):
            self._node.emit(ClearTimer(("replica", coordination_id, message.sender)))
        pending.replied_nodes.append(message.sender)
        if pending.done:
            # A slow replica (or handoff fallback) acked after the quorum was
            # already answered — nothing left to do beyond its bookkeeping.
            self._cleanup_if_settled(coordination_id, pending)
            return
        pending.replies.append((message.sender, True))
        self._maybe_finish_put(coordination_id)

    def _maybe_finish_put(self, coordination_id: int) -> None:
        node = self._node
        env = node.env
        pending = self.sessions.get(coordination_id)
        if pending is None or pending.done:
            return
        if len(pending.replies) < pending.needed:
            return
        pending.done = True
        # Only the overall request deadline is disarmed: replicas still
        # outstanding keep their deadlines, so a primary that never acks is
        # still handed off (fallback + hint) even though the client has its
        # answer — Dynamo keeps pushing the write toward all N homes.
        if pending.request_deadline:
            node.emit(ClearTimer(("request", coordination_id)))
            pending.request_deadline = False
        read = node.mechanism.read(node.store.state_of(pending.key))
        context_bytes = node.mechanism.context_bytes(read.context)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=pending.client_address,
            msg_type=MessageType.PUT_REPLY,
            payload={
                "key": pending.key,
                "coordinator": node.node_id,
                "mechanism_context": read.context,
                "siblings": list(read.siblings),
                "context_bytes": context_bytes,
                "sibling": pending.sibling,
            },
            size_bytes=context_bytes + env.request_overhead_bytes,
            request_id=pending.request_id,
        )))
        # The session span closes at quorum; its reference stays on the
        # session so the handoff tail (later fallback promotions, hints)
        # still parents under it — children may outlive the parent span.
        self._trace_end_session(pending, "ok", acks=len(pending.replies))
        self._cleanup_if_settled(coordination_id, pending)

    def _cleanup_if_settled(self, coordination_id: int,
                            pending: CoordinatorSession) -> None:
        """Drop a finished coordination once no replica deadline is armed."""
        if pending.done and not pending.deadlines:
            self._trace_end_replicas(pending, "unawaited")
            self.sessions.pop(coordination_id, None)

    # ------------------------------------------------------------------ #
    # Read repair (coalesced pushes)
    # ------------------------------------------------------------------ #
    def queue_read_repair(self, target_id: str, key: str, state: Any) -> None:
        """Coalesce repair pushes: one READ_REPAIR message per target replica.

        A busy coordinator repairing many keys to the same stale replica pays
        one message (and one per-message overhead) per batch instead of one
        per key — the same amortisation MERKLE_KEY_STATES batching applies to
        sync transfers.  A full batch flushes immediately; otherwise a short
        coalescing window (``read_repair_batch_ms``) gathers repairs from
        nearby reads.  Queued repairs hold the merged state observed at plan
        time; a newer repair for the same key simply replaces it (merges are
        idempotent, so the worst case of losing the race is a second repair
        on a later read).
        """
        node = self._node
        env = node.env
        batch = self.repair_queue.setdefault(target_id, {})
        batch[key] = state
        if (len(batch) >= env.sync_batch_size
                or env.read_repair_batch_ms <= 0):
            self.flush_read_repairs(target_id)
        elif not self._repair_flush_scheduled:
            self._repair_flush_scheduled = True
            node.emit(SetTimer(
                ("repair-flush",),
                env.read_repair_batch_ms,
                kind="task",
                label=f"read-repair-flush:{node.node_id}",
            ))

    def flush_all_read_repairs(self) -> None:
        self._repair_flush_scheduled = False
        if not self._node.env.is_registered(self._node.node_id):
            # The coordinator crashed while the coalescing window was open.
            # The queue is process memory, not disk: it dies with the crash
            # (read repair is opportunistic — a later read repairs again).
            self.repair_queue.clear()
            return
        for target_id in sorted(self.repair_queue):
            self.flush_read_repairs(target_id)

    def flush_read_repairs(self, target_id: str) -> None:
        node = self._node
        states = self.repair_queue.pop(target_id, None)
        if not states:
            return
        self.read_repair_stats.batches_sent += 1
        size = (sum(node.payload_state_size(key, state)
                    for key, state in states.items())
                + node.env.request_overhead_bytes)
        node.emit(Send(Message(
            sender=node.node_id,
            receiver=target_id,
            msg_type=MessageType.READ_REPAIR,
            payload={"states": states},
            size_bytes=size,
        )))

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def on_recover(self) -> None:
        """Drop process-memory state that must not survive a crash."""
        self.repair_queue.clear()
