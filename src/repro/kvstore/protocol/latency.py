"""Per-peer ack-latency EWMAs shared by coordination and hint replay.

One tracker lives on each :class:`~repro.kvstore.protocol.node.ProtocolNode`.
The coordinator feeds it every observed replica ack round trip and (in
``deadline_mode="adaptive"``) derives per-replica deadlines from it; the hint
replayer feeds it HINT_ACK round trips and consults it to back off from
persistently slow peers instead of hammering them on the daemon's fixed
cadence.
"""

from __future__ import annotations

from typing import Dict, Optional

#: EWMA smoothing factor for observed per-replica ack latency: weight given
#: to the newest observation.
DEADLINE_EWMA_ALPHA = 0.3

#: Adaptive deadline = EWMA x this headroom multiplier (then clamped), so a
#: replica is only declared late when it takes several times its usual
#: round trip.
ADAPTIVE_DEADLINE_MULTIPLIER = 3.0


class PeerLatencyTracker:
    """EWMA of each peer's observed ack latency, with deadline derivation."""

    def __init__(self) -> None:
        #: peer id -> EWMA of observed ack latency (ms).  Exposed as a plain
        #: dict so tests and diagnostics can inspect or seed it.
        self.ewma: Dict[str, float] = {}

    def observe(self, peer_id: str, observed_ms: float) -> None:
        """Fold one observed round trip into the peer's latency EWMA."""
        previous = self.ewma.get(peer_id)
        if previous is None:
            self.ewma[peer_id] = observed_ms
        else:
            self.ewma[peer_id] = (
                DEADLINE_EWMA_ALPHA * observed_ms
                + (1.0 - DEADLINE_EWMA_ALPHA) * previous
            )

    def deadline_ms(self, peer_id: str,
                    mode: str,
                    fixed_ms: float,
                    floor_ms: float,
                    ceiling_ms: float) -> float:
        """How long to wait for this peer's ack before giving up on it.

        ``mode="fixed"`` uses ``fixed_ms`` for every peer.  ``"adaptive"``
        scales the peer's EWMA by :data:`ADAPTIVE_DEADLINE_MULTIPLIER`,
        clamped to [``floor_ms``, ``ceiling_ms``] — fast replicas are declared
        late sooner (failover happens in a few of their round trips, not a
        worst-case constant), while the floor keeps one latency spike from
        triggering a storm of spurious handoffs.  A peer never observed falls
        back to the fixed timeout.
        """
        if mode != "adaptive":
            return fixed_ms
        ewma = self.ewma.get(peer_id)
        if ewma is None:
            return fixed_ms
        deadline = ewma * ADAPTIVE_DEADLINE_MULTIPLIER
        return max(floor_ms, min(deadline, ceiling_ms))

    def is_slow(self, peer_id: str, ceiling_ms: float) -> bool:
        """Whether this peer's usual round trip pins the deadline at its ceiling.

        This is the "persistently slow" predicate hint replay backs off on: a
        peer whose EWMA-derived deadline would clamp at the configured ceiling
        is consistently taking as long as the worst case we are prepared to
        wait, so replaying to it on every daemon tick mostly re-sends batches
        that are still in flight.
        """
        ewma = self.ewma.get(peer_id)
        return ewma is not None and ewma * ADAPTIVE_DEADLINE_MULTIPLIER >= ceiling_ms

    def clear(self) -> None:
        """Forget every observation (process crash: EWMAs are process memory)."""
        self.ewma.clear()
