"""The environment contract between protocol state machines and a backend.

A :class:`ProtocolEnv` bundles everything a state machine may consult that is
*not* part of its own state: cluster configuration (quorums, timeouts, batch
sizes), shared services (placement, the ground-truth write log, cluster-wide
sync statistics) and the two oracle queries that differ per backend
(``can_reach`` — the failure-detector view used by membership-mode
coordination and hint replay — and ``is_registered`` — "is this process still
alive", used to drop queued work after a simulated crash).

Backends provide it differently:

* the deterministic simulator's env proxies live attributes of the
  :class:`~repro.kvstore.simulated.SimulatedCluster`, so tests that tweak
  cluster knobs at runtime keep working;
* the asyncio backend builds a :class:`StaticProtocolEnv` once at node start
  (real deployments do not mutate quorum config mid-request).

State machines only ever *read* the env.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ...obs.trace import NO_TRACER

#: How coordinators decide whom to contact: consult the membership view's
#: failure detector ("membership", the default), or fan out with per-replica
#: deadlines and sloppy-quorum fallbacks ("async").
REQUEST_MODES = ("membership", "async")

#: How async-mode per-replica deadlines are chosen: one fixed timeout
#: ("fixed"), or an EWMA of each replica's observed ack latency, clamped to a
#: floor/ceiling ("adaptive").
DEADLINE_MODES = ("fixed", "adaptive")


@dataclass
class StaticProtocolEnv:
    """A plain-value env for backends whose configuration is fixed at start.

    The attribute set *is* the contract: anything here may be read by the
    state machines.  The simulator's proxy env (see
    ``repro.kvstore.simulated._ClusterEnv``) exposes the same names as
    properties over the live cluster object.
    """

    mechanism: Any
    quorum: Any
    placement: Any
    write_log: Any
    merkle_stats: Any

    request_mode: str = "async"
    replica_timeout_ms: float = 10.0
    request_timeout_ms: float = 50.0
    client_timeout_ms: float = 75.0
    sync_batch_size: int = 16
    merkle_fanout: int = 16
    merkle_depth: int = 2
    read_repair_batch_ms: float = 2.0
    deadline_mode: str = "fixed"
    deadline_floor_ms: float = 2.0
    deadline_ceiling_ms: float = 10.0
    request_overhead_bytes: int = 64
    hinted_handoff_enabled: bool = True
    hint_backoff_multiplier: float = 6.0

    #: Failure-detector view (membership-mode coordination, hint replay
    #: eligibility).  Real-network backends default to "assume reachable and
    #: let deadlines decide", which is exactly Dynamo's stance.
    can_reach: Callable[[str, str], bool] = field(default=lambda s, t: True)
    #: Liveness of a local process (simulated crashes drop queued work).
    is_registered: Callable[[str], bool] = field(default=lambda n: True)
    #: Span emitter for per-request tracing (see :mod:`repro.obs.trace`).
    #: The default null tracer makes every instrumented path a single
    #: ``tracer.enabled`` check; span events go straight to the tracer's
    #: sink, never through the effect system, so tracing cannot perturb
    #: protocol behaviour.
    tracer: Any = NO_TRACER
