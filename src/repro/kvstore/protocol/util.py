"""Small helpers shared by the protocol state machines."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def chunked(items: Sequence, size: int) -> Iterable[Sequence]:
    """Yield ``items`` in consecutive slices of at most ``size`` elements."""
    for start in range(0, len(items), size):
        yield items[start:start + size]


def default_value_size(value: Any) -> int:
    """Approximate wire size of an application value (bytes)."""
    if isinstance(value, bytes):
        return len(value)
    return len(repr(value).encode("utf-8"))
