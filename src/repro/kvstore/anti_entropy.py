"""Anti-entropy: background replica synchronisation.

Dynamo-style stores converge replicas in two ways: read repair (on the read
path, see :mod:`repro.kvstore.read_repair`) and a background anti-entropy
process that periodically exchanges state between replica pairs — the dotted
"server sync" arrows in the paper's Figure 1.  This module provides both the
direct form used with the synchronous store and the
:class:`~repro.network.simulator.PeriodicTask`-driven daemons for the
simulated message-passing cluster.

Two sync strategies exist on the simulated cluster (selected by
``SimulatedCluster(anti_entropy_strategy=...)``):

* ``"full"`` — the original exchange: the source ships the state of every key
  it holds in one ``SYNC_REQUEST`` and the target replies in kind.  Bytes on
  the wire are proportional to the *store size* regardless of divergence.
* ``"merkle"`` (default) — the Merkle-delta protocol: the source ships tree
  digests level by level (``MERKLE_SYNC_REQUEST`` / ``MERKLE_SYNC_RESPONSE``),
  the pair descend only into subtrees whose digests differ, and finally
  exchange states only for the diverged keys, batched into
  ``MERKLE_KEY_STATES`` messages.  Bytes on the wire are proportional to the
  *divergence*, which is what lets the DVV/DVVSet metadata advantage show up
  in sync traffic.  The message handlers live in
  :mod:`repro.kvstore.simulated`; the tree itself in
  :mod:`repro.kvstore.merkle`.

The :class:`AntiEntropyDaemon` below schedules replica pairs for either
strategy and tracks membership churn (joins, departures, crashes), skipping
pairs with an unreachable endpoint.  The :class:`HintedHandoffDaemon`
periodically replays coordinator-held hints to replicas that have recovered.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..network.simulator import PeriodicTask, Simulation
from .sync_store import SyncReplicatedStore


class AntiEntropyScheduler:
    """Round-robin pair scheduling for synchronous stores.

    Each call to :meth:`run_round` synchronises every key between one pair of
    replicas, cycling deterministically through all pairs so that repeated
    rounds converge the whole cluster without requiring all-pairs exchanges
    every time (which would hide the cost differences between mechanisms).
    """

    def __init__(self, store: SyncReplicatedStore) -> None:
        self.store = store
        self._pair_index = 0
        self.rounds_run = 0

    def _pairs(self) -> List[Tuple[str, str]]:
        servers = sorted(self.store.servers)
        return [
            (servers[i], servers[j])
            for i in range(len(servers))
            for j in range(i + 1, len(servers))
        ]

    def run_round(self, key: Optional[str] = None) -> Tuple[str, str]:
        """Synchronise one replica pair (all keys, or one key); returns the pair."""
        pairs = self._pairs()
        if not pairs:
            raise ConfigurationError("anti-entropy needs at least two servers")
        source_id, target_id = pairs[self._pair_index % len(pairs)]
        self._pair_index += 1
        self.rounds_run += 1
        keys = [key] if key is not None else self._keys_of(source_id, target_id)
        for key_to_sync in keys:
            self.store.sync_key(key_to_sync, source_id, target_id, bidirectional=True)
        return source_id, target_id

    def run_until_converged(self, max_rounds: int = 100) -> int:
        """Run rounds until the store converges; returns the number of rounds."""
        for round_number in range(1, max_rounds + 1):
            self.run_round()
            if self.store.is_converged():
                return round_number
        raise ConfigurationError(f"store did not converge within {max_rounds} rounds")

    def _keys_of(self, *server_ids: str) -> List[str]:
        keys = set()
        for server_id in server_ids:
            keys.update(self.store.node(server_id).storage.keys())
        return sorted(keys)


class AntiEntropyDaemon:
    """Periodic anti-entropy for the simulated message-passing cluster.

    The daemon does not touch node state directly; it asks the cluster to
    start an exchange between a replica pair (full-state or Merkle-delta,
    whatever the cluster is configured for), so the exchanged state pays the
    same latency/size costs as every other message (keeping the latency
    experiment honest).

    The pair rotation is membership-aware: nodes can be added and removed at
    runtime (elastic clusters), and pairs with an endpoint the ``eligible``
    predicate rejects (crashed / decommissioning nodes) are skipped for that
    tick rather than wasting an exchange on a black hole.
    """

    def __init__(self,
                 simulation: Simulation,
                 trigger_sync: Callable[[str, str], None],
                 node_ids: Sequence[str],
                 interval_ms: float = 50.0,
                 eligible: Optional[Callable[[str], bool]] = None) -> None:
        if len(node_ids) < 2:
            raise ConfigurationError("anti-entropy needs at least two nodes")
        self._trigger_sync = trigger_sync
        self._node_ids = sorted(node_ids)
        self._eligible = eligible or (lambda _node_id: True)
        self._pair_index = 0
        self.exchanges_started = 0
        self.exchanges_skipped = 0
        self._task = PeriodicTask(simulation, interval_ms, self._tick, label="anti-entropy")

    # ------------------------------------------------------------------ #
    # Membership churn
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: str) -> None:
        """Include a newly joined node in the pair rotation."""
        if node_id not in self._node_ids:
            self._node_ids.append(node_id)
            self._node_ids.sort()

    def remove_node(self, node_id: str) -> None:
        """Drop a decommissioned node from the pair rotation."""
        if node_id in self._node_ids:
            self._node_ids.remove(node_id)

    def nodes(self) -> List[str]:
        """Nodes currently in the rotation, sorted."""
        return list(self._node_ids)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _pairs(self) -> List[Tuple[str, str]]:
        return [
            (self._node_ids[i], self._node_ids[j])
            for i in range(len(self._node_ids))
            for j in range(i + 1, len(self._node_ids))
        ]

    def _tick(self) -> None:
        pairs = self._pairs()
        if not pairs:
            return
        # Advance through the rotation until a fully reachable pair is found
        # (at most one full cycle, so a mostly-down cluster cannot loop).
        for _ in range(len(pairs)):
            source_id, target_id = pairs[self._pair_index % len(pairs)]
            self._pair_index += 1
            if self._eligible(source_id) and self._eligible(target_id):
                self.exchanges_started += 1
                self._trigger_sync(source_id, target_id)
                return
            self.exchanges_skipped += 1

    def stop(self) -> None:
        """Stop scheduling further exchanges."""
        self._task.stop()


class HintedHandoffDaemon:
    """Background replay of coordinator-held hints (simulated cluster).

    When a coordinator cannot reach one of a key's primary replicas during a
    write it stores a *hint* — the target id plus the post-write state — in
    its local :class:`~repro.kvstore.server.StorageNode`.  This daemon
    periodically scans every server for outstanding hints and asks the
    cluster to replay the ones whose target is reachable again
    (``HINT_REPLAY`` messages, acknowledged with ``HINT_ACK``).  Replay is
    idempotent — states merge through the causality mechanism — so duplicate
    deliveries and re-sends after a lost ack are harmless.
    """

    def __init__(self,
                 simulation: Simulation,
                 sources: Callable[[], Sequence[str]],
                 trigger_replay: Callable[[str], int],
                 interval_ms: float = 50.0) -> None:
        self._sources = sources
        self._trigger_replay = trigger_replay
        self.replay_batches_sent = 0
        self._task = PeriodicTask(simulation, interval_ms, self._tick, label="hinted-handoff")

    def _tick(self) -> None:
        for source_id in self._sources():
            self.replay_batches_sent += self._trigger_replay(source_id)

    def stop(self) -> None:
        """Stop scheduling further replays."""
        self._task.stop()
