"""Anti-entropy: background replica synchronisation.

Dynamo-style stores converge replicas in two ways: read repair (on the read
path, see :mod:`repro.kvstore.read_repair`) and a background anti-entropy
process that periodically exchanges state between replica pairs — the dotted
"server sync" arrows in the paper's Figure 1.  This module provides both the
direct form used with the synchronous store and a
:class:`~repro.network.simulator.PeriodicTask`-driven daemon for the simulated
message-passing cluster.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..network.simulator import PeriodicTask, Simulation
from .sync_store import SyncReplicatedStore


class AntiEntropyScheduler:
    """Round-robin pair scheduling for synchronous stores.

    Each call to :meth:`run_round` synchronises every key between one pair of
    replicas, cycling deterministically through all pairs so that repeated
    rounds converge the whole cluster without requiring all-pairs exchanges
    every time (which would hide the cost differences between mechanisms).
    """

    def __init__(self, store: SyncReplicatedStore) -> None:
        self.store = store
        self._pair_index = 0
        self.rounds_run = 0

    def _pairs(self) -> List[Tuple[str, str]]:
        servers = sorted(self.store.servers)
        return [
            (servers[i], servers[j])
            for i in range(len(servers))
            for j in range(i + 1, len(servers))
        ]

    def run_round(self, key: Optional[str] = None) -> Tuple[str, str]:
        """Synchronise one replica pair (all keys, or one key); returns the pair."""
        pairs = self._pairs()
        if not pairs:
            raise ConfigurationError("anti-entropy needs at least two servers")
        source_id, target_id = pairs[self._pair_index % len(pairs)]
        self._pair_index += 1
        self.rounds_run += 1
        keys = [key] if key is not None else self._keys_of(source_id, target_id)
        for key_to_sync in keys:
            self.store.sync_key(key_to_sync, source_id, target_id, bidirectional=True)
        return source_id, target_id

    def run_until_converged(self, max_rounds: int = 100) -> int:
        """Run rounds until the store converges; returns the number of rounds."""
        for round_number in range(1, max_rounds + 1):
            self.run_round()
            if self.store.is_converged():
                return round_number
        raise ConfigurationError(f"store did not converge within {max_rounds} rounds")

    def _keys_of(self, *server_ids: str) -> List[str]:
        keys = set()
        for server_id in server_ids:
            keys.update(self.store.node(server_id).storage.keys())
        return sorted(keys)


class AntiEntropyDaemon:
    """Periodic anti-entropy for the simulated message-passing cluster.

    The daemon does not touch node state directly; it asks the cluster to
    issue SYNC_REQUEST messages between a replica pair, so the exchanged state
    pays the same latency/size costs as every other message (keeping the
    latency experiment honest).
    """

    def __init__(self,
                 simulation: Simulation,
                 trigger_sync: Callable[[str, str], None],
                 node_ids: Sequence[str],
                 interval_ms: float = 50.0) -> None:
        if len(node_ids) < 2:
            raise ConfigurationError("anti-entropy needs at least two nodes")
        self._trigger_sync = trigger_sync
        self._node_ids = sorted(node_ids)
        self._pair_index = 0
        self.exchanges_started = 0
        self._task = PeriodicTask(simulation, interval_ms, self._tick, label="anti-entropy")

    def _pairs(self) -> List[Tuple[str, str]]:
        return [
            (self._node_ids[i], self._node_ids[j])
            for i in range(len(self._node_ids))
            for j in range(i + 1, len(self._node_ids))
        ]

    def _tick(self) -> None:
        pairs = self._pairs()
        source_id, target_id = pairs[self._pair_index % len(pairs)]
        self._pair_index += 1
        self.exchanges_started += 1
        self._trigger_sync(source_id, target_id)

    def stop(self) -> None:
        """Stop scheduling further exchanges."""
        self._task.stop()
