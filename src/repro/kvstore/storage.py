"""Per-node versioned storage, laid out per partition (vnode).

Storage layout
--------------
A node's disk is divided into **vnode stores**, one per partition of the
cluster's :class:`~repro.cluster.ring.PartitionMap` — the Riak layout the
paper's evaluation ran on, where each partition owns its keys (and its own
hashtree, see :mod:`repro.kvstore.merkle_index`).  :class:`NodeStorage` is
the thin **vnode manager** in front of them: it routes every key to its
partition's :class:`VnodeStore` while preserving the flat key → state API
callers that don't care about ranges have always used.  Constructed without
a partition map (the synchronous store, unit tests) it degenerates to a
single vnode holding everything.

Each :class:`VnodeStore` keeps, per key, the mechanism-specific state
describing the key's live sibling versions.  The backend is a plain
dictionary — a stand-in for one partition's slice of the node's disk:
anything kept here survives a process restart, and is lost only when that
slice is wiped (:meth:`NodeStorage.wipe_vnode` for one partition,
replacing the :class:`NodeStorage` wholesale for the whole disk).  Besides
get/put of states the manager can report, per key and in aggregate, how many
metadata entries and encoded bytes the causality mechanism is holding
(experiment E2's storage-footprint series).

Mutation listeners come in two granularities: node-level listeners receive
``(key, state)`` for every mutation anywhere on the node (the whole-node
Merkle index of the synchronous store subscribes here), while per-vnode
listeners receive ``(key, state, fingerprint)`` for mutations inside one
partition — the extra ``fingerprint`` is an optional *maintained digest*
riding along with the write (vnode handoff ships them), letting a per-range
Merkle index adopt it instead of re-hashing the state.

Outstanding hinted-handoff hints also live here, *in the storage layer*,
because a hint is a durable obligation: the held write is the only copy a
crashed primary will ever get back, so a coordinator (or sloppy-quorum
fallback) crashing and restarting must still replay it.  Keeping hints next
to the key states gives them exactly the disk's fate — a restart keeps them,
a full wipe loses them, and wiping one vnode loses the hints whose keys
lived in that partition.  Repeated writes held for the same ``(target,
key)`` coalesce into one hint by merging states, so replay delivers a single
up-to-date state instead of a chain of stale ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..clocks.interface import CausalityMechanism
from ..cluster.ring import PartitionMap

#: A node-level storage mutation listener: called with ``(key, state)`` after
#: every state change anywhere on the node, where ``state`` is the new
#: mechanism state or ``None`` when the key was dropped.  A whole-node
#: incremental Merkle index subscribes one of these so every write path —
#: client puts, replica merges, read repair, hint replay, handoff ingestion —
#: keeps the hash tree current.
MutationListener = Callable[[str, Any], None]

#: A per-vnode mutation listener: called with ``(key, state, fingerprint)``
#: for every state change inside one partition.  ``fingerprint`` is the
#: maintained state fingerprint supplied by the writer (vnode handoff ships
#: digests alongside states) or ``None`` when the receiver must hash the
#: state itself.
VnodeListener = Callable[[str, Any, Optional[bytes]], None]


@dataclass
class Hint:
    """A write held for an unreachable replica (hinted handoff).

    ``target_id`` names the intended primary the held state must eventually
    be replayed to.  In the async request mode the holder may be a
    sloppy-quorum fallback node rather than the write's coordinator.  The
    ``state`` is mutable: later writes held for the same ``(target, key)``
    merge into it rather than queueing behind it.
    """

    hint_id: int
    target_id: str
    key: str
    state: Any
    #: Local-only trace reference of the span/point that recorded the hint
    #: being stored (``None`` unless tracing is enabled); never serialized
    #: or replayed over the wire.
    trace: Any = None


@dataclass
class VnodeStore:
    """One partition's slice of a node's disk: its key → state map."""

    partition_id: int
    states: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.states)


class NodeStorage:
    """The vnode manager: per-partition stores behind the flat key/state API.

    With a :class:`~repro.cluster.ring.PartitionMap` every key is routed to
    its partition's :class:`VnodeStore`; without one, a single vnode
    (partition 0) holds the whole key space and the manager behaves exactly
    like the flat storage it replaced.  Durable hints are node-level — they
    are obligations *to other nodes*, keyed by replay target — but share the
    fate of the vnode their key lives in.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 partition_map: Optional[PartitionMap] = None) -> None:
        self._mechanism = mechanism
        self._partition_map = partition_map
        self._vnodes: Dict[int, VnodeStore] = {}
        self._hints: Dict[str, List[Hint]] = {}
        self._hint_ids = itertools.count(1)
        self._listeners: List[MutationListener] = []
        self._vnode_listeners: Dict[int, List[VnodeListener]] = {}

    # ------------------------------------------------------------------ #
    # Partition routing
    # ------------------------------------------------------------------ #
    @property
    def partition_map(self) -> Optional[PartitionMap]:
        """The range ↔ vnode mapping (None: single-vnode layout)."""
        return self._partition_map

    @property
    def partition_count(self) -> int:
        """How many vnode stores this node's key space is divided into."""
        return self._partition_map.partition_count if self._partition_map else 1

    def partition_of(self, key: str) -> int:
        """The partition (vnode) a key belongs to."""
        return self._partition_map.partition_of(key) if self._partition_map else 0

    def vnode_ids(self) -> range:
        """Every partition id of this node's layout, in range order."""
        return range(self.partition_count)

    def vnode_keys(self, partition_id: int) -> List[str]:
        """The keys held by one vnode, sorted."""
        vnode = self._vnodes.get(partition_id)
        return sorted(vnode.states) if vnode is not None else []

    def vnode_items(self, partition_id: int) -> List[Tuple[str, Any]]:
        """``(key, state)`` pairs held by one vnode, in key order."""
        vnode = self._vnodes.get(partition_id)
        if vnode is None:
            return []
        return [(key, vnode.states[key]) for key in sorted(vnode.states)]

    def vnode_len(self, partition_id: int) -> int:
        """Number of keys held by one vnode."""
        vnode = self._vnodes.get(partition_id)
        return len(vnode) if vnode is not None else 0

    def wipe_vnode(self, partition_id: int) -> int:
        """Lose one partition's slice of the disk; returns keys dropped.

        The vnode's key states are removed (listeners see each drop, so an
        attached index empties that range), and hints whose key lived in the
        partition are lost with it — they were stored in the same slice.
        Other vnodes are untouched.
        """
        vnode = self._vnodes.pop(partition_id, None)
        dropped = sorted(vnode.states) if vnode is not None else []
        if vnode is not None:
            vnode.states.clear()
        for key in dropped:
            self._notify(partition_id, key, None)
        for target_id in list(self._hints):
            kept = [hint for hint in self._hints[target_id]
                    if self.partition_of(hint.key) != partition_id]
            if kept:
                self._hints[target_id] = kept
            else:
                self._hints.pop(target_id)
        return len(dropped)

    # ------------------------------------------------------------------ #
    # Mutation listeners
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: MutationListener) -> None:
        """Register a node-level callback fired after every state mutation.

        The listener receives ``(key, state)`` with ``state=None`` when the
        key was dropped.  Listeners belong to the process, not the disk: a
        wiped or replaced storage starts with none.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: MutationListener) -> None:
        """Remove a previously registered node-level listener (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def subscribe_vnode(self, partition_id: int, listener: VnodeListener) -> None:
        """Register a per-vnode callback for one partition's mutations.

        The listener receives ``(key, state, fingerprint)``; ``fingerprint``
        is the writer-supplied maintained digest or ``None``.
        """
        listeners = self._vnode_listeners.setdefault(partition_id, [])
        if listener not in listeners:
            listeners.append(listener)

    def unsubscribe_vnode(self, partition_id: int, listener: VnodeListener) -> None:
        """Remove a previously registered per-vnode listener (idempotent)."""
        listeners = self._vnode_listeners.get(partition_id)
        if listeners and listener in listeners:
            listeners.remove(listener)
            if not listeners:
                self._vnode_listeners.pop(partition_id)

    def _notify(self, partition_id: int, key: str, state: Any,
                fingerprint: Optional[bytes] = None) -> None:
        for listener in self._listeners:
            listener(key, state)
        for listener in self._vnode_listeners.get(partition_id, ()):
            listener(key, state, fingerprint)

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def mechanism(self) -> CausalityMechanism:
        """The causality mechanism whose states this node stores."""
        return self._mechanism

    def get_state(self, key: str) -> Any:
        """The stored state for ``key`` (the mechanism's empty state when absent)."""
        vnode = self._vnodes.get(self.partition_of(key))
        if vnode is not None and key in vnode.states:
            return vnode.states[key]
        return self._mechanism.empty_state()

    def put_state(self, key: str, state: Any,
                  fingerprint: Optional[bytes] = None) -> None:
        """Replace the stored state for ``key`` (dropping it when empty).

        ``fingerprint`` optionally passes the state's maintained Merkle
        fingerprint through to per-vnode listeners — vnode handoff uses this
        so the receiving range index adopts the sender's digest instead of
        re-hashing the state.
        """
        partition_id = self.partition_of(key)
        if self._mechanism.is_empty(state):
            vnode = self._vnodes.get(partition_id)
            if vnode is not None:
                vnode.states.pop(key, None)
                if not vnode.states:
                    self._vnodes.pop(partition_id)
            self._notify(partition_id, key, None)
        else:
            vnode = self._vnodes.get(partition_id)
            if vnode is None:
                vnode = self._vnodes[partition_id] = VnodeStore(partition_id)
            vnode.states[key] = state
            self._notify(partition_id, key, state, fingerprint)

    def delete(self, key: str) -> None:
        """Remove a key entirely."""
        partition_id = self.partition_of(key)
        vnode = self._vnodes.get(partition_id)
        if vnode is not None:
            vnode.states.pop(key, None)
            if not vnode.states:
                self._vnodes.pop(partition_id)
        self._notify(partition_id, key, None)

    def has_key(self, key: str) -> bool:
        """True iff the node holds live versions for ``key``."""
        vnode = self._vnodes.get(self.partition_of(key))
        return vnode is not None and key in vnode.states

    def keys(self) -> List[str]:
        """All keys with live versions across every vnode, sorted."""
        return sorted(key for vnode in self._vnodes.values()
                      for key in vnode.states)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate ``(key, state)`` pairs across every vnode, in key order."""
        merged: Dict[str, Any] = {}
        for vnode in self._vnodes.values():
            merged.update(vnode.states)
        for key in sorted(merged):
            yield key, merged[key]

    def __len__(self) -> int:
        return sum(len(vnode) for vnode in self._vnodes.values())

    def __contains__(self, key: str) -> bool:
        return self.has_key(key)

    # ------------------------------------------------------------------ #
    # Durable hints (hinted handoff)
    # ------------------------------------------------------------------ #
    def store_hint(self, target_id: str, key: str, state: Any,
                   trace: Any = None) -> Hint:
        """Persist a held write destined for ``target_id``.

        A write to a ``(target, key)`` that already has an outstanding hint
        merges into it instead of appending: the mechanism's merge keeps the
        union of causal information, so one replay delivers everything the
        chain of individual hints would have — without shipping each stale
        intermediate state.
        """
        hints = self._hints.setdefault(target_id, [])
        for hint in hints:
            if hint.key == key:
                hint.state = self._mechanism.merge(hint.state, state)
                if hint.trace is None:
                    hint.trace = trace
                return hint
        hint = Hint(next(self._hint_ids), target_id, key, state, trace=trace)
        hints.append(hint)
        return hint

    def hints_for(self, target_id: str) -> List[Hint]:
        """The outstanding hints destined for ``target_id`` (oldest first)."""
        return list(self._hints.get(target_id, []))

    def hint_targets(self) -> List[str]:
        """Node ids with at least one outstanding hint, sorted."""
        return sorted(target for target, hints in self._hints.items() if hints)

    def pending_hints(self) -> int:
        """Total outstanding hints across all targets."""
        return sum(len(hints) for hints in self._hints.values())

    def clear_hints(self, target_id: str, hint_ids: Optional[List[int]] = None) -> None:
        """Drop acknowledged hints (all of a target's when ``hint_ids`` is None)."""
        if hint_ids is None:
            self._hints.pop(target_id, None)
            return
        acknowledged = set(hint_ids)
        remaining = [hint for hint in self._hints.get(target_id, ())
                     if hint.hint_id not in acknowledged]
        if remaining:
            self._hints[target_id] = remaining
        else:
            self._hints.pop(target_id, None)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def sibling_count(self, key: str) -> int:
        """Number of live sibling versions stored for ``key``."""
        return len(self._mechanism.siblings(self.get_state(key)))

    def metadata_entries(self, key: Optional[str] = None) -> int:
        """Causality-metadata entries stored for one key or for the whole node."""
        if key is not None:
            return self._mechanism.metadata_entries(self.get_state(key))
        return sum(self._mechanism.metadata_entries(state)
                   for vnode in self._vnodes.values()
                   for state in vnode.states.values())

    def metadata_bytes(self, key: Optional[str] = None) -> int:
        """Encoded causality-metadata bytes stored for one key or for the whole node."""
        if key is not None:
            return self._mechanism.metadata_bytes(self.get_state(key))
        return sum(self._mechanism.metadata_bytes(state)
                   for vnode in self._vnodes.values()
                   for state in vnode.states.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"NodeStorage(mechanism={self._mechanism.name!r}, "
                f"keys={len(self)}, vnodes={len(self._vnodes)})")


#: The class doubles as the vnode manager the per-partition layout is driven
#: through; both names refer to the same type.
VnodeManager = NodeStorage
