"""Per-node versioned storage.

Each storage node keeps, per key, the mechanism-specific state describing the
key's live sibling versions.  The backend is a plain dictionary — durability
is out of scope for the reproduction — but the interface mirrors what the
metadata experiments need: besides get/put of states it can report, per key
and in aggregate, how many metadata entries and encoded bytes the causality
mechanism is holding (experiment E2's storage-footprint series).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..clocks.interface import CausalityMechanism


class NodeStorage:
    """The key → mechanism-state map of one storage node."""

    def __init__(self, mechanism: CausalityMechanism) -> None:
        self._mechanism = mechanism
        self._states: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def mechanism(self) -> CausalityMechanism:
        """The causality mechanism whose states this node stores."""
        return self._mechanism

    def get_state(self, key: str) -> Any:
        """The stored state for ``key`` (the mechanism's empty state when absent)."""
        if key in self._states:
            return self._states[key]
        return self._mechanism.empty_state()

    def put_state(self, key: str, state: Any) -> None:
        """Replace the stored state for ``key`` (dropping it when empty)."""
        if self._mechanism.is_empty(state):
            self._states.pop(key, None)
        else:
            self._states[key] = state

    def delete(self, key: str) -> None:
        """Remove a key entirely."""
        self._states.pop(key, None)

    def has_key(self, key: str) -> bool:
        """True iff the node holds live versions for ``key``."""
        return key in self._states

    def keys(self) -> List[str]:
        """All keys with live versions, sorted."""
        return sorted(self._states)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate ``(key, state)`` pairs in key order."""
        for key in self.keys():
            yield key, self._states[key]

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, key: str) -> bool:
        return key in self._states

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def sibling_count(self, key: str) -> int:
        """Number of live sibling versions stored for ``key``."""
        return len(self._mechanism.siblings(self.get_state(key)))

    def metadata_entries(self, key: Optional[str] = None) -> int:
        """Causality-metadata entries stored for one key or for the whole node."""
        if key is not None:
            return self._mechanism.metadata_entries(self.get_state(key))
        return sum(self._mechanism.metadata_entries(state) for state in self._states.values())

    def metadata_bytes(self, key: Optional[str] = None) -> int:
        """Encoded causality-metadata bytes stored for one key or for the whole node."""
        if key is not None:
            return self._mechanism.metadata_bytes(self.get_state(key))
        return sum(self._mechanism.metadata_bytes(state) for state in self._states.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"NodeStorage(mechanism={self._mechanism.name!r}, keys={len(self._states)})"
