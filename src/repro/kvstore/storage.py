"""Per-node versioned storage.

Each storage node keeps, per key, the mechanism-specific state describing the
key's live sibling versions.  The backend is a plain dictionary — a stand-in
for the node's disk: anything kept here survives a process restart of the
node, and is lost only when the disk itself is wiped (``recover_node(...,
wipe=True)`` replaces the :class:`NodeStorage` wholesale).  Besides get/put
of states it can report, per key and in aggregate, how many metadata entries
and encoded bytes the causality mechanism is holding (experiment E2's
storage-footprint series).

Outstanding hinted-handoff hints also live here, *in the storage layer*,
because a hint is a durable obligation: the held write is the only copy a
crashed primary will ever get back, so a coordinator (or sloppy-quorum
fallback) crashing and restarting must still replay it.  Keeping hints next
to the key states gives them exactly the disk's fate — a restart keeps them,
a wipe loses them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..clocks.interface import CausalityMechanism

#: A storage mutation listener: called with ``(key, state)`` after every
#: state change, where ``state`` is the new mechanism state or ``None`` when
#: the key was dropped.  The incremental Merkle index subscribes one of these
#: so every write path — client puts, replica merges, read repair, hint
#: replay, handoff ingestion — keeps the hash tree current.
MutationListener = Callable[[str, Any], None]


@dataclass
class Hint:
    """A write held for an unreachable replica (hinted handoff).

    ``target_id`` names the intended primary the held state must eventually
    be replayed to.  In the async request mode the holder may be a
    sloppy-quorum fallback node rather than the write's coordinator.
    """

    hint_id: int
    target_id: str
    key: str
    state: Any


class NodeStorage:
    """The key → mechanism-state map (plus durable hints) of one storage node."""

    def __init__(self, mechanism: CausalityMechanism) -> None:
        self._mechanism = mechanism
        self._states: Dict[str, Any] = {}
        self._hints: Dict[str, List[Hint]] = {}
        self._hint_ids = itertools.count(1)
        self._listeners: List[MutationListener] = []

    # ------------------------------------------------------------------ #
    # Mutation listeners
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: MutationListener) -> None:
        """Register a callback fired after every state mutation.

        The listener receives ``(key, state)`` with ``state=None`` when the
        key was dropped.  Listeners belong to the process, not the disk: a
        wiped or replaced storage starts with none.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: MutationListener) -> None:
        """Remove a previously registered mutation listener (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, key: str, state: Any) -> None:
        for listener in self._listeners:
            listener(key, state)

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def mechanism(self) -> CausalityMechanism:
        """The causality mechanism whose states this node stores."""
        return self._mechanism

    def get_state(self, key: str) -> Any:
        """The stored state for ``key`` (the mechanism's empty state when absent)."""
        if key in self._states:
            return self._states[key]
        return self._mechanism.empty_state()

    def put_state(self, key: str, state: Any) -> None:
        """Replace the stored state for ``key`` (dropping it when empty)."""
        if self._mechanism.is_empty(state):
            self._states.pop(key, None)
            self._notify(key, None)
        else:
            self._states[key] = state
            self._notify(key, state)

    def delete(self, key: str) -> None:
        """Remove a key entirely."""
        self._states.pop(key, None)
        self._notify(key, None)

    def has_key(self, key: str) -> bool:
        """True iff the node holds live versions for ``key``."""
        return key in self._states

    def keys(self) -> List[str]:
        """All keys with live versions, sorted."""
        return sorted(self._states)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate ``(key, state)`` pairs in key order."""
        for key in self.keys():
            yield key, self._states[key]

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, key: str) -> bool:
        return key in self._states

    # ------------------------------------------------------------------ #
    # Durable hints (hinted handoff)
    # ------------------------------------------------------------------ #
    def store_hint(self, target_id: str, key: str, state: Any) -> Hint:
        """Persist a held write destined for ``target_id``."""
        hint = Hint(next(self._hint_ids), target_id, key, state)
        self._hints.setdefault(target_id, []).append(hint)
        return hint

    def hints_for(self, target_id: str) -> List[Hint]:
        """The outstanding hints destined for ``target_id`` (oldest first)."""
        return list(self._hints.get(target_id, []))

    def hint_targets(self) -> List[str]:
        """Node ids with at least one outstanding hint, sorted."""
        return sorted(target for target, hints in self._hints.items() if hints)

    def pending_hints(self) -> int:
        """Total outstanding hints across all targets."""
        return sum(len(hints) for hints in self._hints.values())

    def clear_hints(self, target_id: str, hint_ids: Optional[List[int]] = None) -> None:
        """Drop acknowledged hints (all of a target's when ``hint_ids`` is None)."""
        if hint_ids is None:
            self._hints.pop(target_id, None)
            return
        remaining = [hint for hint in self._hints.get(target_id, ())
                     if hint.hint_id not in set(hint_ids)]
        if remaining:
            self._hints[target_id] = remaining
        else:
            self._hints.pop(target_id, None)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def sibling_count(self, key: str) -> int:
        """Number of live sibling versions stored for ``key``."""
        return len(self._mechanism.siblings(self.get_state(key)))

    def metadata_entries(self, key: Optional[str] = None) -> int:
        """Causality-metadata entries stored for one key or for the whole node."""
        if key is not None:
            return self._mechanism.metadata_entries(self.get_state(key))
        return sum(self._mechanism.metadata_entries(state) for state in self._states.values())

    def metadata_bytes(self, key: Optional[str] = None) -> int:
        """Encoded causality-metadata bytes stored for one key or for the whole node."""
        if key is not None:
            return self._mechanism.metadata_bytes(self.get_state(key))
        return sum(self._mechanism.metadata_bytes(state) for state in self._states.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"NodeStorage(mechanism={self._mechanism.name!r}, keys={len(self._states)})"
