"""The asyncio backend: the same protocol machines over real sockets.

This is the "serves real traffic" counterpart of the deterministic simulator
in :mod:`repro.kvstore.simulated`.  Both host the exact same state machines
from :mod:`repro.kvstore.protocol` — an :class:`AsyncServerNode` is to the
asyncio backend what ``MessageServer`` is to the simulator — but here every
message crosses an actual TCP or Unix-domain socket through an
:class:`~repro.network.asyncio_transport.AsyncioEndpoint`, timers are
``loop.call_later``, the clock is the wall clock, and any number of clients
issue requests concurrently.

The cluster runs in ``request_mode="async"`` (Dynamo-style deadline-driven
coordination): there is no simulated membership oracle on a real network, so
reachability is decided by deadlines and sloppy-quorum fallbacks, which is
exactly what the async mode implements.  Anti-entropy and hint replay run as
plain asyncio tasks on their configured cadences.

Everything lives in one process (one event loop) — the point is real
concurrency, framing and wall-clock latency, not multi-host deployment — so
convergence checks read peer storage directly, the way the simulator's do.

Typical use::

    cluster = AsyncioCluster(create("dvv"), server_ids=("A", "B", "C"))
    async with cluster:
        client = await cluster.client("c1")
        await client.put("cart", "beer")
        result = await client.get("cart")
"""

from __future__ import annotations

import asyncio
import itertools
import os
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..clocks.interface import CausalityMechanism
from ..cluster.membership import Membership
from ..cluster.preference_list import PlacementService, QuorumConfig
from ..cluster.ring import DEFAULT_PARTITION_COUNT, ConsistentHashRing, PartitionMap
from ..cluster.topology import Topology
from ..core.exceptions import ConfigurationError
from ..network.asyncio_transport import Address, AsyncioEndpoint
from ..network.message import Message
from ..obs.cluster_metrics import build_cluster_registry
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NO_TRACER
from .client import GetResult, PutResult
from .merkle import key_fingerprint
from .merkle_index import VnodeIndexSet
from .protocol import (
    SYNC_MESSAGE_TYPES,
    ClientProtocol,
    EffectRunner,
    MerkleSyncStats,
    ProtocolNode,
)
from .protocol.env import StaticProtocolEnv
from .write_log import WriteLog


def _socket_name(node_id: str) -> str:
    """A filesystem-safe Unix socket name for a node id."""
    return node_id.replace(":", "_").replace("/", "_") + ".sock"


class UnixDirAddressBook:
    """Derives every node's socket path from one shared directory.

    Convention over registry: each participant listens at
    ``<dir>/<sanitized-id>.sock``, so any id is addressable without central
    bookkeeping — in particular clients started later, or in *other
    processes* (the CLI's ``connect`` command), whose existence the servers
    could not have known at start time.  Sending toward an id nobody has
    bound yet is simply a counted drop, like every unreachable receiver.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def __contains__(self, node_id: str) -> bool:
        return True

    def __getitem__(self, node_id: str) -> Address:
        return ("unix", os.path.join(self.directory, _socket_name(node_id)))


class AsyncServerNode:
    """One storage server of the asyncio cluster (listener + protocol)."""

    def __init__(self, node_id: str, mechanism: CausalityMechanism,
                 env: StaticProtocolEnv,
                 address_book: Dict[str, Address],
                 merkle_maintenance: str = "incremental") -> None:
        self.node_id = node_id
        self.protocol = ProtocolNode(node_id, mechanism, env)
        if merkle_maintenance == "incremental":
            self.protocol.store.attach_merkle_index(VnodeIndexSet(
                mechanism,
                partition_map=env.placement.partition_map,
                fanout=env.merkle_fanout,
                depth=env.merkle_depth,
                counters=self.protocol.store.stats,
            ))
        self.endpoint = AsyncioEndpoint(node_id, address_book,
                                        handler=self._handle_message)
        self.runner = EffectRunner(self.endpoint, self._on_timer)

    @property
    def node(self):
        """The server's storage layer (parity with ``MessageServer.node``)."""
        return self.protocol.store

    def _handle_message(self, message: Message) -> None:
        self.runner.run(
            self.protocol.on_message(message, self.endpoint.now_ms()))

    def _on_timer(self, timer_id, now: float):
        return self.protocol.on_timer(timer_id, now)

    def start_merkle_sync_with(self, peer_id: str) -> None:
        self.runner.run(
            self.protocol.start_merkle_sync_with(peer_id, self.endpoint.now_ms()))

    def replay_hints(self) -> int:
        effects, batches = self.protocol.replay_hints(self.endpoint.now_ms())
        self.runner.run(effects)
        return batches

    async def start(self) -> None:
        await self.endpoint.start()

    async def close(self) -> None:
        self.runner.cancel_all()
        await self.endpoint.close()


class AsyncClusterClient:
    """A concurrent client of the asyncio cluster.

    Hosts the same :class:`~repro.kvstore.protocol.client.ClientProtocol` the
    simulator's clients use — causal session, failover deadlines, request
    records — and adapts its callback style to awaitables: :meth:`get` and
    :meth:`put` resolve when the reply arrives (or with ``None`` once the
    machine has exhausted its coordinator candidates).
    """

    def __init__(self, client_id: str, env: StaticProtocolEnv,
                 address_book: Dict[str, Address]) -> None:
        self.client_id = client_id
        self.protocol = ClientProtocol(client_id, env)
        self.endpoint = AsyncioEndpoint(self.protocol.address, address_book,
                                        handler=self._handle_message)
        self.runner = EffectRunner(self.endpoint, self.protocol.on_timer)

    @property
    def address(self) -> str:
        return self.protocol.address

    @property
    def session(self):
        return self.protocol.session

    @property
    def records(self):
        return self.protocol.records

    def _handle_message(self, message: Message) -> None:
        self.runner.run(
            self.protocol.on_message(message, self.endpoint.now_ms()))

    async def get(self, key: str) -> Optional[GetResult]:
        """GET ``key``; resolves with the result, or ``None`` on failure."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Optional[GetResult]]" = loop.create_future()
        self.runner.run(self.protocol.get(
            key,
            lambda result: future.done() or future.set_result(result),
            self.endpoint.now_ms()))
        return await future

    async def put(self, key: str, value: Any,
                  use_context: bool = True) -> Optional[PutResult]:
        """PUT ``value`` under ``key``; resolves when acknowledged."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Optional[PutResult]]" = loop.create_future()
        self.runner.run(self.protocol.put(
            key, value,
            lambda result: future.done() or future.set_result(result),
            self.endpoint.now_ms(),
            use_context=use_context))
        return await future

    async def start(self) -> None:
        await self.endpoint.start()

    async def close(self) -> None:
        self.runner.cancel_all()
        await self.endpoint.close()


class AsyncioCluster:
    """A running cluster over real sockets, one event loop, many clients.

    Parameters mirror the simulator's where they mean the same thing; the
    transport knobs (latency models, loss, partitions) do not exist here —
    the network is whatever the kernel provides.

    ``transport="unix"`` (default) listens on Unix-domain sockets under
    ``socket_dir`` (a fresh temp dir when omitted); ``transport="tcp"``
    listens on ``host`` with consecutive ports from ``base_port``.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 server_ids: Sequence[str] = ("A", "B", "C"),
                 quorum: Optional[QuorumConfig] = None,
                 transport: str = "unix",
                 socket_dir: Optional[str] = None,
                 host: str = "127.0.0.1",
                 base_port: int = 0,
                 anti_entropy_interval_ms: Optional[float] = 100.0,
                 hint_replay_interval_ms: Optional[float] = 50.0,
                 replica_timeout_ms: float = 250.0,
                 request_timeout_ms: float = 1000.0,
                 client_timeout_ms: Optional[float] = None,
                 deadline_mode: str = "fixed",
                 sync_batch_size: int = 16,
                 merkle_fanout: int = 16,
                 merkle_depth: int = 2,
                 merkle_maintenance: str = "incremental",
                 read_repair_batch_ms: float = 2.0,
                 virtual_nodes: int = 32,
                 partition_count: int = DEFAULT_PARTITION_COUNT,
                 request_overhead_bytes: int = 64,
                 topology: Optional[Topology] = None,
                 tracer: Optional[Any] = None) -> None:
        if not server_ids:
            raise ConfigurationError("at least one server id is required")
        if transport not in ("unix", "tcp"):
            raise ConfigurationError(
                f"unknown transport {transport!r}; choose 'unix' or 'tcp'")
        if transport == "tcp" and base_port <= 0:
            raise ConfigurationError(
                "transport='tcp' needs an explicit base_port")
        self.mechanism = mechanism
        self.server_ids = list(server_ids)
        self.quorum = quorum or QuorumConfig(n=min(3, len(server_ids)),
                                             r=min(2, len(server_ids)),
                                             w=min(2, len(server_ids)),
                                             sloppy=True)
        self.transport_kind = transport
        self._socket_dir = socket_dir
        self._owns_socket_dir = socket_dir is None
        self._host = host
        self._base_port = base_port
        self._next_port = base_port
        self.anti_entropy_interval_ms = anti_entropy_interval_ms
        self.hint_replay_interval_ms = hint_replay_interval_ms
        self.merkle_maintenance = merkle_maintenance

        self.ring = ConsistentHashRing(server_ids, virtual_nodes=virtual_nodes)
        #: DC assignment: placement becomes DC-aware here exactly as in the
        #: simulator (WAN latency itself is whatever the real network does).
        self.topology = topology
        self.membership = Membership(server_ids, topology=topology)
        self.partition_map = PartitionMap(partition_count)
        self.placement = PlacementService(self.ring, self.membership,
                                          self.quorum,
                                          partition_map=self.partition_map,
                                          topology=topology)
        self.write_log = WriteLog()
        self.merkle_stats = MerkleSyncStats()
        self.env = StaticProtocolEnv(
            mechanism=mechanism,
            quorum=self.quorum,
            placement=self.placement,
            write_log=self.write_log,
            merkle_stats=self.merkle_stats,
            request_mode="async",
            replica_timeout_ms=replica_timeout_ms,
            request_timeout_ms=request_timeout_ms,
            client_timeout_ms=(client_timeout_ms if client_timeout_ms is not None
                               else request_timeout_ms * 1.5),
            sync_batch_size=sync_batch_size,
            merkle_fanout=merkle_fanout,
            merkle_depth=merkle_depth,
            read_repair_batch_ms=read_repair_batch_ms,
            deadline_mode=deadline_mode,
            deadline_floor_ms=replica_timeout_ms / 5.0,
            deadline_ceiling_ms=replica_timeout_ms,
            request_overhead_bytes=request_overhead_bytes,
            tracer=tracer if tracer is not None else NO_TRACER,
        )
        self.tracer = self.env.tracer
        #: node id → listen address; a plain dict for TCP, a
        #: :class:`UnixDirAddressBook` once a unix cluster starts.
        self.address_book: Any = {}
        self.servers: Dict[str, AsyncServerNode] = {}
        self.clients: Dict[str, AsyncClusterClient] = {}
        self._daemon_tasks: List[asyncio.Task] = []
        self._ae_pairs = itertools.cycle(
            [(a, b) for a in self.server_ids for b in self.server_ids if a != b]
        ) if len(self.server_ids) > 1 else None
        self._started = False
        self._metrics_registry: Optional[MetricsRegistry] = None
        #: Metrics captured at shutdown, after the daemons stopped but
        #: before the transports closed — without it, stats accumulated by
        #: the anti-entropy and hint-replay daemons' last in-flight work
        #: would be unreadable once the endpoints are gone.
        self._final_snapshot: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    @property
    def socket_dir(self) -> Optional[str]:
        """Directory of the Unix-domain sockets (None before a unix start)."""
        return self._socket_dir

    def _assign_address(self, node_id: str) -> None:
        if self.transport_kind == "unix":
            return  # derived by the UnixDirAddressBook convention
        self.address_book[node_id] = ("tcp", self._host, self._next_port)
        self._next_port += 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind every server's listener and start the background daemons."""
        if self._started:
            return
        if self.transport_kind == "unix":
            if self._socket_dir is None:
                self._socket_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            self.address_book = UnixDirAddressBook(self._socket_dir)
        for server_id in self.server_ids:
            self._assign_address(server_id)
        for server_id in self.server_ids:
            server = AsyncServerNode(server_id, self.mechanism, self.env,
                                     self.address_book,
                                     merkle_maintenance=self.merkle_maintenance)
            self.servers[server_id] = server
            await server.start()
        if self.anti_entropy_interval_ms is not None and self._ae_pairs is not None:
            self._daemon_tasks.append(asyncio.get_running_loop().create_task(
                self._anti_entropy_daemon()))
        if self.hint_replay_interval_ms is not None:
            self._daemon_tasks.append(asyncio.get_running_loop().create_task(
                self._hint_replay_daemon()))
        self._started = True
        self._final_snapshot = None

    async def stop(self) -> None:
        """Cancel daemons, close every endpoint, remove Unix sockets."""
        for task in self._daemon_tasks:
            task.cancel()
        for task in self._daemon_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._daemon_tasks.clear()
        # Flush the final metrics while every endpoint's stats object is
        # still alive: the daemons have stopped, so the counters are
        # complete, and snapshots taken after shutdown stay meaningful.
        if self.servers:
            self._final_snapshot = self.metrics_registry().snapshot()
        for client in self.clients.values():
            await client.close()
        for server in self.servers.values():
            await server.close()
        if (self.transport_kind == "unix" and self._owns_socket_dir
                and self._socket_dir is not None):
            for name in os.listdir(self._socket_dir):
                try:
                    os.unlink(os.path.join(self._socket_dir, name))
                except OSError:
                    pass
            try:
                os.rmdir(self._socket_dir)
            except OSError:
                pass
        self._started = False

    async def __aenter__(self) -> "AsyncioCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Clients
    # ------------------------------------------------------------------ #
    async def client(self, client_id: str) -> AsyncClusterClient:
        """Create (and start) the client node with the given id."""
        if client_id in self.clients:
            return self.clients[client_id]
        client = AsyncClusterClient(client_id, self.env, self.address_book)
        self._assign_address(client.address)
        self.clients[client_id] = client
        await client.start()
        return client

    # ------------------------------------------------------------------ #
    # Background daemons
    # ------------------------------------------------------------------ #
    async def _anti_entropy_daemon(self) -> None:
        interval = self.anti_entropy_interval_ms / 1000.0
        while True:
            await asyncio.sleep(interval)
            source_id, target_id = next(self._ae_pairs)
            server = self.servers.get(source_id)
            if server is not None:
                server.start_merkle_sync_with(target_id)

    async def _hint_replay_daemon(self) -> None:
        interval = self.hint_replay_interval_ms / 1000.0
        while True:
            await asyncio.sleep(interval)
            for server in list(self.servers.values()):
                if server.node.pending_hints() > 0:
                    server.replay_hints()

    # ------------------------------------------------------------------ #
    # Convergence and metrics (in-process verification helpers)
    # ------------------------------------------------------------------ #
    def key_universe(self) -> List[str]:
        keys = set()
        for server in self.servers.values():
            keys.update(server.node.storage.keys())
        return sorted(keys)

    def is_converged(self) -> bool:
        """True iff every server stores an identical sibling set for every key."""
        for key in self.key_universe():
            fingerprints = {key_fingerprint(server.node, key)
                            for server in self.servers.values()}
            if len(fingerprints) > 1:
                return False
        return True

    async def converge(self, timeout_s: float = 30.0,
                       poll_s: float = 0.05) -> float:
        """Wait until anti-entropy has converged every replica; returns the
        wall-clock seconds it took.  Raises ``TimeoutError`` on expiry."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        deadline = started + timeout_s
        while True:
            if self.is_converged():
                return loop.time() - started
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"cluster did not converge within {timeout_s}s")
            await asyncio.sleep(poll_s)

    def all_request_records(self):
        records = []
        for client in self.clients.values():
            records.extend(client.records)
        records.sort(key=lambda record: record.finished_at)
        return records

    def stat_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for server in self.servers.values():
            for name, value in server.node.stats.items():
                totals[name] = totals.get(name, 0) + value
        totals["pending_hints"] = sum(server.node.pending_hints()
                                      for server in self.servers.values())
        return totals

    def sync_bytes(self) -> int:
        """Total bytes sent so far on anti-entropy messages (all endpoints)."""
        return sum(server.endpoint.stats.bytes_for(*SYNC_MESSAGE_TYPES)
                   for server in self.servers.values())

    def metrics_registry(self) -> MetricsRegistry:
        """The cluster's unified metrics registry (built once, reads live)."""
        if self._metrics_registry is None:
            self._metrics_registry = build_cluster_registry(self)
        return self._metrics_registry

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One flat, stable, JSON-serializable view of every cluster stat.

        After :meth:`stop` this returns the snapshot captured at shutdown
        (daemons drained, transports still open), so no daemon work from the
        final interval is lost.
        """
        if self._final_snapshot is not None:
            return dict(self._final_snapshot)
        return self.metrics_registry().snapshot()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"AsyncioCluster(mechanism={self.mechanism.name!r}, "
                f"servers={sorted(self.servers)}, "
                f"transport={self.transport_kind!r})")
