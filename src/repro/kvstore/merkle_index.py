"""Incremental Merkle index: write-maintained hash trees (Riak-style).

The Merkle-delta anti-entropy protocol (:mod:`repro.kvstore.merkle`,
:mod:`repro.kvstore.simulated`) needs each replica's hash tree at the start of
every exchange.  Rebuilding that tree from scratch — one fingerprint per key
plus a full bucket/interior re-hash — makes the *tree* cost of an exchange
proportional to the key-space size, defeating the point of the protocol,
whose *wire* cost is already proportional to the divergence.  Production
systems do not rebuild: the Riak deployment the paper's evaluation modified
keeps **persistent, incrementally maintained hashtrees** (one per vnode) that
are updated as objects are written and only re-hash the paths a write dirtied.

:class:`MerkleIndex` is that design element for this substrate:

* it subscribes to a :class:`~repro.kvstore.storage.NodeStorage` mutation
  stream, so **every** path that changes a key's sibling set — client writes,
  replica merges, read repair, Merkle-delta transfers, hint replay,
  rebalancing handoff — re-fingerprints exactly the mutated key (one sha256)
  and marks its leaf bucket dirty;
* re-hashing is **lazy**: dirty buckets accumulate and are flushed the next
  time a digest is needed, so a burst of writes into one bucket costs a single
  leaf re-hash plus one root-path recomputation, not one per write and never
  a tree rebuild;
* :meth:`snapshot` freezes the current digests into an ordinary
  :class:`~repro.kvstore.merkle.MerkleTree` (no hashing — the digests are
  copied), so the existing exchange handlers and :func:`diff_keys` work
  unchanged and two replicas agree with a from-scratch rebuild bit for bit;
* the index shares its owner's durability: a crash-restart rebuilds it from
  the surviving :class:`NodeStorage` contents (:meth:`rebuild`), a disk wipe
  empties it (:meth:`reset`).

Maintenance cost is observable through the counters the index increments in
the owning node's stats dict — ``keys_hashed`` (fingerprints computed),
``buckets_rehashed`` (leaf buckets re-hashed on flush), ``full_rebuilds``
(rebuilds from storage) and ``snapshot_digests`` (maintained digests served
to exchanges) — which is what lets the anti-entropy benchmark show exchange
tree work dropping from O(keys) to O(divergent buckets).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..clocks.interface import CausalityMechanism
from ..core.exceptions import ConfigurationError
from .merkle import MerkleNode, MerkleTree, _hash_bytes, bucket_path, state_fingerprint
from .server import INDEX_COUNTERS
from .storage import NodeStorage


def _empty_digests(fanout: int, depth: int) -> List[bytes]:
    """Digest of an all-empty subtree rooted at each level (root is level 0).

    An unmaterialised bucket hashes exactly like an empty one in a full
    rebuild (``sha256(b"")``, aggregated upward), so the index only has to
    store digests for paths that actually hold keys.
    """
    digests: List[bytes] = [b""] * (depth + 1)
    digests[depth] = _hash_bytes(b"")
    for level in range(depth - 1, -1, -1):
        digests[level] = _hash_bytes(digests[level + 1] * fanout)
    return digests


class MerkleIndex:
    """A per-node hash tree updated in place on every storage mutation.

    Parameters
    ----------
    mechanism:
        The causality mechanism whose states are fingerprinted.
    fanout / depth:
        Tree shape; must match the peer's for digests to be comparable.
    counters:
        Mutable mapping the index increments its maintenance counters in
        (typically the owning :class:`StorageNode`'s ``stats`` dict so the
        numbers surface in cluster stat totals).  A private dict is used when
        omitted.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 fanout: int = 16,
                 depth: int = 2,
                 counters: Optional[Dict[str, int]] = None) -> None:
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.mechanism = mechanism
        self.fanout = fanout
        self.depth = depth
        self.counters: Dict[str, int] = counters if counters is not None else {}
        for name in INDEX_COUNTERS:
            self.counters.setdefault(name, 0)
        self._empty = _empty_digests(fanout, depth)
        self._fingerprints: Dict[str, bytes] = {}
        self._buckets: Dict[Tuple[int, ...], Set[str]] = {}
        self._digests: Dict[Tuple[int, ...], bytes] = {}
        self._dirty: Set[Tuple[int, ...]] = set()

    # ------------------------------------------------------------------ #
    # Mutation tracking (NodeStorage listener)
    # ------------------------------------------------------------------ #
    def on_state_changed(self, key: str, state: Any) -> None:
        """Storage listener: re-fingerprint one key and dirty its bucket.

        ``state`` is the key's new mechanism state, or ``None``/empty when the
        key was dropped.  Cost: one fingerprint hash for a live state, set
        bookkeeping otherwise — never a re-hash of anything else.
        """
        if state is None or self.mechanism.is_empty(state):
            if self._fingerprints.pop(key, None) is None:
                return  # key was not indexed; nothing changed
            path = bucket_path(key, self.fanout, self.depth)
            bucket = self._buckets.get(path)
            if bucket is not None:
                bucket.discard(key)
            self._dirty.add(path)
            return
        fingerprint = state_fingerprint(self.mechanism, state)
        self.counters["keys_hashed"] += 1
        if self._fingerprints.get(key) == fingerprint:
            return  # idempotent merge / duplicate delivery: tree unchanged
        self._fingerprints[key] = fingerprint
        path = bucket_path(key, self.fanout, self.depth)
        self._buckets.setdefault(path, set()).add(key)
        self._dirty.add(path)

    # ------------------------------------------------------------------ #
    # Lazy re-hash
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Re-hash every dirty bucket and the root paths above them.

        Returns the number of leaf buckets re-hashed.  A burst of writes that
        landed in the same bucket since the last flush costs one leaf re-hash
        here, and interior paths shared by several dirty buckets are re-hashed
        once, not once per bucket.
        """
        if not self._dirty:
            return 0
        rehashed = 0
        parents: Set[Tuple[int, ...]] = set()
        for path in self._dirty:
            keys = self._buckets.get(path)
            if keys:
                material = b"".join(self._fingerprints[key] for key in sorted(keys))
                self._digests[path] = _hash_bytes(material)
            else:
                self._buckets.pop(path, None)
                self._digests.pop(path, None)
            rehashed += 1
            parents.add(path[:-1])
        self._dirty.clear()
        self.counters["buckets_rehashed"] += rehashed
        for level in range(self.depth - 1, -1, -1):
            grandparents: Set[Tuple[int, ...]] = set()
            for path in parents:
                material = b"".join(self.digest_at(path + (branch,))
                                    for branch in range(self.fanout))
                digest = _hash_bytes(material)
                if digest == self._empty[level]:
                    self._digests.pop(path, None)
                else:
                    self._digests[path] = digest
                if level > 0:
                    grandparents.add(path[:-1])
            parents = grandparents
        return rehashed

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def root_digest(self) -> bytes:
        """Digest summarising the whole replica state (flushes lazily)."""
        self.flush()
        return self.digest_at(())

    def digest_at(self, path: Tuple[int, ...]) -> bytes:
        """The maintained digest at a tree path (empty-subtree default)."""
        return self._digests.get(path, self._empty[len(path)])

    def dirty_buckets(self) -> int:
        """Leaf buckets awaiting a re-hash (0 right after any digest query)."""
        return len(self._dirty)

    def keys(self) -> List[str]:
        """Every indexed key, sorted."""
        return sorted(self._fingerprints)

    def fingerprint(self, key: str) -> Optional[bytes]:
        """The maintained fingerprint for ``key`` (None when absent)."""
        return self._fingerprints.get(key)

    def snapshot(self) -> MerkleTree:
        """Freeze the current digests into a :class:`MerkleTree`.

        The returned tree is immutable and digest-identical to
        ``MerkleTree.for_node(...)`` over the same keys, but is assembled from
        the maintained digests without hashing anything — the cheap per-
        exchange operation that replaces the per-exchange rebuild.  Exchange
        sessions hold on to it, so later writes do not disturb in-flight
        level comparisons.
        """
        self.flush()
        exported = 0

        def build(path: Tuple[int, ...], level: int) -> MerkleNode:
            nonlocal exported
            exported += 1
            if level == self.depth:
                return MerkleNode(digest=self.digest_at(path),
                                  keys=sorted(self._buckets.get(path, ())))
            return MerkleNode(
                digest=self.digest_at(path),
                children=[build(path + (branch,), level + 1)
                          for branch in range(self.fanout)],
            )

        root = build((), 0)
        self.counters["snapshot_digests"] += exported
        # MerkleTree.__init__ copies the fingerprint dict, which is what
        # freezes the snapshot against further index updates.
        return MerkleTree(self._fingerprints, fanout=self.fanout,
                          depth=self.depth, prebuilt_root=root)

    # ------------------------------------------------------------------ #
    # Durability: the index shares its storage's fate
    # ------------------------------------------------------------------ #
    def rebuild(self, storage: NodeStorage) -> None:
        """Reindex everything from storage (crash-restart / first attach).

        This is the one deliberately O(keys) operation: the in-memory tree
        died with the process, but the key states survived on disk, so the
        index is reconstructed from them — exactly what Riak does when a
        hashtree is missing or marked stale at startup.
        """
        self.counters["full_rebuilds"] += 1
        self._fingerprints.clear()
        self._buckets.clear()
        self._digests.clear()
        self._dirty.clear()
        for key, state in storage.items():
            self.on_state_changed(key, state)
        self.flush()

    def reset(self) -> None:
        """Empty the index (disk wipe: there is nothing left to summarise)."""
        self._fingerprints.clear()
        self._buckets.clear()
        self._digests.clear()
        self._dirty.clear()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MerkleIndex(keys={len(self._fingerprints)}, "
            f"fanout={self.fanout}, depth={self.depth}, "
            f"dirty={len(self._dirty)})"
        )
