"""Incremental Merkle index: write-maintained hash trees (Riak-style).

The Merkle-delta anti-entropy protocol (:mod:`repro.kvstore.merkle`,
:mod:`repro.kvstore.simulated`) needs each replica's hash tree at the start of
every exchange.  Rebuilding that tree from scratch — one fingerprint per key
plus a full bucket/interior re-hash — makes the *tree* cost of an exchange
proportional to the key-space size, defeating the point of the protocol,
whose *wire* cost is already proportional to the divergence.  Production
systems do not rebuild: the Riak deployment the paper's evaluation modified
keeps **persistent, incrementally maintained hashtrees** (one per vnode) that
are updated as objects are written and only re-hash the paths a write dirtied.

:class:`MerkleIndex` is that design element for this substrate, and
:class:`VnodeIndexSet` arranges one of them **per vnode range** — the actual
Riak layout, where each partition carries its own hashtree:

* a :class:`MerkleIndex` subscribes to a
  :class:`~repro.kvstore.storage.NodeStorage` mutation stream (node-level
  for a whole-node index, per-vnode inside a :class:`VnodeIndexSet`), so
  **every** path that changes a key's sibling set — client writes, replica
  merges, read repair, Merkle-delta transfers, hint replay, rebalancing
  handoff — re-fingerprints exactly the mutated key (one sha256) and marks
  its leaf bucket dirty;
* a mutation that arrives with a **maintained fingerprint** (vnode handoff
  ships the sender's digests alongside the states) is *imported* rather than
  hashed — moving a whole range between nodes costs zero re-fingerprinting
  on either side;
* re-hashing is **lazy**: dirty buckets accumulate and are flushed the next
  time a digest is needed, so a burst of writes into one bucket costs a single
  leaf re-hash plus one root-path recomputation, not one per write and never
  a tree rebuild;
* :meth:`MerkleIndex.snapshot` freezes the current digests into an ordinary
  :class:`~repro.kvstore.merkle.MerkleTree` (no hashing — the digests are
  copied), so the existing exchange handlers and :func:`diff_keys` work
  unchanged and two replicas agree with a from-scratch rebuild bit for bit;
  per-range anti-entropy snapshots a *single partition's* tree and compares
  only that range;
* the index shares its owner's durability: a crash-restart rebuilds it from
  the surviving :class:`NodeStorage` contents (:meth:`rebuild` — per vnode,
  so only ranges that actually hold keys pay), a disk wipe empties it
  (:meth:`reset`, or :meth:`VnodeIndexSet.reset_vnode` when a single
  partition's slice is lost).

Maintenance cost is observable through the counters the index increments in
the owning node's stats dict — ``keys_hashed`` (fingerprints computed),
``fingerprints_imported`` (maintained digests adopted from a handoff
instead of hashing), ``buckets_rehashed`` (leaf buckets re-hashed on
flush), ``full_rebuilds`` (rebuilds from storage) and ``snapshot_digests``
(maintained digests served to exchanges) — which is what lets the
anti-entropy benchmark show exchange tree work dropping from O(keys) to
O(divergent buckets), and handoff tree work dropping to O(1).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..clocks.interface import CausalityMechanism
from ..cluster.ring import PartitionMap
from ..core.exceptions import ConfigurationError
from .merkle import (
    MerkleNode,
    MerkleTree,
    _hash_bytes,
    bucket_path,
    state_fingerprint,
    state_fingerprint_cold,
)
from .server import INDEX_COUNTERS
from .storage import NodeStorage


def _run_audit(index, storage: NodeStorage, sample_size: int,
               rng: Optional[random.Random]) -> Dict[str, int]:
    """Shared audit walk for :class:`MerkleIndex` and :class:`VnodeIndexSet`.

    Samples up to ``sample_size`` live keys from ``storage``, recomputes each
    key's fingerprint cold (bypassing every cache), and compares it to the
    digest the index maintains — the bit-rot check for the write-maintained
    tree: a mismatch means the index drifted from what is actually stored.
    """
    rng = rng if rng is not None else random.Random()
    index.flush()
    keys = storage.keys()
    if sample_size < len(keys):
        keys = rng.sample(keys, sample_size)
    mismatches = 0
    for key in keys:
        expected = state_fingerprint_cold(index.mechanism, storage.get_state(key))
        if index.fingerprint(key) != expected:
            mismatches += 1
    index.counters["audit_keys_checked"] += len(keys)
    index.counters["audit_mismatches"] += mismatches
    return {"keys_checked": len(keys), "mismatches": mismatches}


def _empty_digests(fanout: int, depth: int) -> List[bytes]:
    """Digest of an all-empty subtree rooted at each level (root is level 0).

    An unmaterialised bucket hashes exactly like an empty one in a full
    rebuild (``sha256(b"")``, aggregated upward), so the index only has to
    store digests for paths that actually hold keys.
    """
    digests: List[bytes] = [b""] * (depth + 1)
    digests[depth] = _hash_bytes(b"")
    for level in range(depth - 1, -1, -1):
        digests[level] = _hash_bytes(digests[level + 1] * fanout)
    return digests


class MerkleIndex:
    """A per-node hash tree updated in place on every storage mutation.

    Parameters
    ----------
    mechanism:
        The causality mechanism whose states are fingerprinted.
    fanout / depth:
        Tree shape; must match the peer's for digests to be comparable.
    counters:
        Mutable mapping the index increments its maintenance counters in
        (typically the owning :class:`StorageNode`'s ``stats`` dict so the
        numbers surface in cluster stat totals).  A private dict is used when
        omitted.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 fanout: int = 16,
                 depth: int = 2,
                 counters: Optional[Dict[str, int]] = None) -> None:
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.mechanism = mechanism
        self.fanout = fanout
        self.depth = depth
        self.counters: Dict[str, int] = counters if counters is not None else {}
        for name in INDEX_COUNTERS:
            self.counters.setdefault(name, 0)
        self._empty = _empty_digests(fanout, depth)
        self._fingerprints: Dict[str, bytes] = {}
        self._buckets: Dict[Tuple[int, ...], Set[str]] = {}
        self._digests: Dict[Tuple[int, ...], bytes] = {}
        self._dirty: Set[Tuple[int, ...]] = set()

    # ------------------------------------------------------------------ #
    # Mutation tracking (NodeStorage listener)
    # ------------------------------------------------------------------ #
    def on_state_changed(self, key: str, state: Any,
                         fingerprint: Optional[bytes] = None) -> None:
        """Storage listener: re-fingerprint one key and dirty its bucket.

        ``state`` is the key's new mechanism state, or ``None``/empty when the
        key was dropped.  A caller that already holds the state's maintained
        fingerprint (vnode handoff ships the sender's digests with the
        states) passes it as ``fingerprint`` and the index *imports* it —
        counted in ``fingerprints_imported`` — instead of hashing.  Cost:
        one fingerprint hash for a live state without a supplied digest, set
        bookkeeping otherwise — never a re-hash of anything else.
        """
        if state is None or self.mechanism.is_empty(state):
            if self._fingerprints.pop(key, None) is None:
                return  # key was not indexed; nothing changed
            path = bucket_path(key, self.fanout, self.depth)
            bucket = self._buckets.get(path)
            if bucket is not None:
                bucket.discard(key)
            self._dirty.add(path)
            return
        if fingerprint is None:
            fingerprint = state_fingerprint(self.mechanism, state)
            self.counters["keys_hashed"] += 1
        else:
            self.counters["fingerprints_imported"] += 1
        if self._fingerprints.get(key) == fingerprint:
            return  # idempotent merge / duplicate delivery: tree unchanged
        self._fingerprints[key] = fingerprint
        path = bucket_path(key, self.fanout, self.depth)
        self._buckets.setdefault(path, set()).add(key)
        self._dirty.add(path)

    # ------------------------------------------------------------------ #
    # Lazy re-hash
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Re-hash every dirty bucket and the root paths above them.

        Returns the number of leaf buckets re-hashed.  A burst of writes that
        landed in the same bucket since the last flush costs one leaf re-hash
        here, and interior paths shared by several dirty buckets are re-hashed
        once, not once per bucket.  A dirty bucket that emptied (its last key
        was dropped) is popped without hashing anything and is not counted.
        """
        if not self._dirty:
            return 0
        rehashed = 0
        parents: Set[Tuple[int, ...]] = set()
        for path in self._dirty:
            keys = self._buckets.get(path)
            if keys:
                material = b"".join(self._fingerprints[key] for key in sorted(keys))
                self._digests[path] = _hash_bytes(material)
                rehashed += 1
            else:
                self._buckets.pop(path, None)
                self._digests.pop(path, None)
            parents.add(path[:-1])
        self._dirty.clear()
        self.counters["buckets_rehashed"] += rehashed
        for level in range(self.depth - 1, -1, -1):
            grandparents: Set[Tuple[int, ...]] = set()
            for path in parents:
                material = b"".join(self.digest_at(path + (branch,))
                                    for branch in range(self.fanout))
                digest = _hash_bytes(material)
                if digest == self._empty[level]:
                    self._digests.pop(path, None)
                else:
                    self._digests[path] = digest
                if level > 0:
                    grandparents.add(path[:-1])
            parents = grandparents
        return rehashed

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def root_digest(self) -> bytes:
        """Digest summarising the whole replica state (flushes lazily)."""
        self.flush()
        return self.digest_at(())

    def digest_at(self, path: Tuple[int, ...]) -> bytes:
        """The maintained digest at a tree path (empty-subtree default)."""
        return self._digests.get(path, self._empty[len(path)])

    def dirty_buckets(self) -> int:
        """Leaf buckets awaiting a re-hash (0 right after any digest query)."""
        return len(self._dirty)

    def keys(self) -> List[str]:
        """Every indexed key, sorted."""
        return sorted(self._fingerprints)

    @property
    def key_count(self) -> int:
        """Number of indexed keys (cheap non-sorting alternative to keys())."""
        return len(self._fingerprints)

    def fingerprint(self, key: str) -> Optional[bytes]:
        """The maintained fingerprint for ``key`` (None when absent)."""
        return self._fingerprints.get(key)

    def snapshot(self) -> MerkleTree:
        """Freeze the current digests into a :class:`MerkleTree`.

        The returned tree is immutable and digest-identical to
        ``MerkleTree.for_node(...)`` over the same keys, but is assembled from
        the maintained digests without hashing anything — the cheap per-
        exchange operation that replaces the per-exchange rebuild.  Exchange
        sessions hold on to it, so later writes do not disturb in-flight
        level comparisons.
        """
        self.flush()
        exported = 0

        def build(path: Tuple[int, ...], level: int) -> MerkleNode:
            nonlocal exported
            exported += 1
            if level == self.depth:
                return MerkleNode(digest=self.digest_at(path),
                                  keys=sorted(self._buckets.get(path, ())))
            return MerkleNode(
                digest=self.digest_at(path),
                children=[build(path + (branch,), level + 1)
                          for branch in range(self.fanout)],
            )

        root = build((), 0)
        self.counters["snapshot_digests"] += exported
        # MerkleTree.__init__ copies the fingerprint dict, which is what
        # freezes the snapshot against further index updates.
        return MerkleTree(self._fingerprints, fanout=self.fanout,
                          depth=self.depth, prebuilt_root=root)

    # ------------------------------------------------------------------ #
    # Storage attachment (listener plumbing)
    # ------------------------------------------------------------------ #
    def attach(self, storage: NodeStorage) -> None:
        """Subscribe to the storage's node-level mutation stream."""
        storage.subscribe(self.on_state_changed)

    def detach(self, storage: NodeStorage) -> None:
        """Unsubscribe from the storage's mutation stream (idempotent)."""
        storage.unsubscribe(self.on_state_changed)

    # ------------------------------------------------------------------ #
    # Durability: the index shares its storage's fate
    # ------------------------------------------------------------------ #
    def rebuild_from(self, items: Iterable[Tuple[str, Any]]) -> None:
        """Reindex from an iterable of ``(key, state)`` pairs.

        This is the one deliberately O(keys) operation: the in-memory tree
        died with the process, but the key states survived on disk, so the
        index is reconstructed from them — exactly what Riak does when a
        hashtree is missing or marked stale at startup.
        """
        self.counters["full_rebuilds"] += 1
        self._fingerprints.clear()
        self._buckets.clear()
        self._digests.clear()
        self._dirty.clear()
        for key, state in items:
            self.on_state_changed(key, state)
        self.flush()

    def rebuild(self, storage: NodeStorage) -> None:
        """Reindex everything from storage (crash-restart / first attach)."""
        self.rebuild_from(storage.items())

    def reset(self) -> None:
        """Empty the index (disk wipe: there is nothing left to summarise)."""
        self._fingerprints.clear()
        self._buckets.clear()
        self._digests.clear()
        self._dirty.clear()

    def audit(self, storage: NodeStorage, sample_size: int = 64,
              rng: Optional[random.Random] = None) -> Dict[str, int]:
        """Cold-verify a random sample of stored keys against the index.

        Returns ``{"keys_checked", "mismatches"}`` and accumulates both into
        the ``audit_keys_checked`` / ``audit_mismatches`` counters.  A nonzero
        mismatch count means the maintained tree no longer reflects storage
        (a missed mutation event, or bit-rot in a cached digest) and the
        range should be rebuilt.
        """
        return _run_audit(self, storage, sample_size, rng)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MerkleIndex(keys={len(self._fingerprints)}, "
            f"fanout={self.fanout}, depth={self.depth}, "
            f"dirty={len(self._dirty)})"
        )


class VnodeIndexSet:
    """One :class:`MerkleIndex` per vnode range — Riak's per-partition trees.

    The set subscribes each member index to its partition's mutation stream
    (:meth:`attach`), so a write only ever touches the tree of the range it
    lands in, and exposes the whole-node :class:`MerkleIndex` query surface
    (``root_digest`` / ``keys()`` / ``fingerprint`` / ``snapshot`` /
    ``rebuild`` / ``reset``) so callers that don't care about ranges — the
    churn property tests, the restart/wipe paths — see one logical index.
    Per-range anti-entropy uses the partition-addressed surface instead:
    :meth:`partition_root` and :meth:`snapshot_partition` compare and descend
    a single range without touching the others.

    The whole-node ``root_digest`` is computed by pooling every range's
    maintained fingerprints into one combined tree: bucket digests are
    re-derived (cheap, bounded by the tree shape) but **no key is ever
    re-fingerprinted**, and the result is bit-identical to a flat whole-node
    index — pinned by the union-digest property tests.

    All member indexes share one ``counters`` mapping, so maintenance cost
    surfaces in the owning node's stats exactly as a flat index's would.
    """

    def __init__(self,
                 mechanism: CausalityMechanism,
                 partition_map: Optional[PartitionMap] = None,
                 fanout: int = 16,
                 depth: int = 2,
                 counters: Optional[Dict[str, int]] = None) -> None:
        self.mechanism = mechanism
        self.partition_map = partition_map
        self.fanout = fanout
        self.depth = depth
        self.counters: Dict[str, int] = counters if counters is not None else {}
        for name in INDEX_COUNTERS:
            self.counters.setdefault(name, 0)
        partition_ids = (partition_map.partition_ids()
                         if partition_map is not None else range(1))
        self.indexes: Dict[int, MerkleIndex] = {
            partition_id: MerkleIndex(mechanism, fanout=fanout, depth=depth,
                                      counters=self.counters)
            for partition_id in partition_ids
        }
        self._empty_root = _empty_digests(fanout, depth)[0]

    # ------------------------------------------------------------------ #
    # Partition-addressed surface (per-range anti-entropy, vnode recovery)
    # ------------------------------------------------------------------ #
    def partition_ids(self) -> List[int]:
        """Every partition id the set maintains a tree for, sorted."""
        return sorted(self.indexes)

    def partition_of(self, key: str) -> int:
        """The partition a key's tree lives in."""
        return (self.partition_map.partition_of(key)
                if self.partition_map is not None else 0)

    def index_for(self, partition_id: int) -> MerkleIndex:
        """The member index of one partition."""
        return self.indexes[partition_id]

    def partition_root(self, partition_id: int) -> bytes:
        """One range's root digest (flushes that range only)."""
        return self.indexes[partition_id].root_digest

    @property
    def empty_root_digest(self) -> bytes:
        """Root digest of an empty range (what an absent peer range hashes to)."""
        return self._empty_root

    def snapshot_partition(self, partition_id: int) -> MerkleTree:
        """Freeze one range's digests into a :class:`MerkleTree`."""
        return self.indexes[partition_id].snapshot()

    def reset_vnode(self, partition_id: int) -> None:
        """Empty one range's tree (its slice of the disk was wiped)."""
        self.indexes[partition_id].reset()

    def rebuild_vnode(self, partition_id: int, storage: NodeStorage) -> None:
        """Reconstruct one range's tree from its vnode's surviving states."""
        items = storage.vnode_items(partition_id)
        if items:
            self.indexes[partition_id].rebuild_from(items)
        else:
            self.indexes[partition_id].reset()

    # ------------------------------------------------------------------ #
    # Storage attachment (listener plumbing)
    # ------------------------------------------------------------------ #
    def attach(self, storage: NodeStorage) -> None:
        """Subscribe each member index to its partition's mutation stream."""
        for partition_id, index in self.indexes.items():
            storage.subscribe_vnode(partition_id, index.on_state_changed)

    def detach(self, storage: NodeStorage) -> None:
        """Unsubscribe every member index (idempotent)."""
        for partition_id, index in self.indexes.items():
            storage.unsubscribe_vnode(partition_id, index.on_state_changed)

    # ------------------------------------------------------------------ #
    # Whole-node MerkleIndex surface
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Flush every range's dirty buckets; returns leaf buckets re-hashed."""
        return sum(index.flush() for index in self.indexes.values())

    def dirty_buckets(self) -> int:
        """Leaf buckets awaiting a re-hash across every range."""
        return sum(index.dirty_buckets() for index in self.indexes.values())

    def _combined_fingerprints(self) -> Dict[str, bytes]:
        combined: Dict[str, bytes] = {}
        for index in self.indexes.values():
            combined.update(index._fingerprints)
        return combined

    @property
    def root_digest(self) -> bytes:
        """Whole-node digest: the union of every range's maintained keys.

        Equals a flat whole-node index (and a from-scratch rebuild) bit for
        bit: the combined tree re-derives bucket digests from the maintained
        fingerprints but hashes no key states.
        """
        self.flush()
        return MerkleTree(self._combined_fingerprints(),
                          fanout=self.fanout, depth=self.depth).root_digest

    def keys(self) -> List[str]:
        """Every indexed key across every range, sorted."""
        return sorted(self._combined_fingerprints())

    @property
    def key_count(self) -> int:
        """Number of indexed keys across every range."""
        return sum(index.key_count for index in self.indexes.values())

    def fingerprint(self, key: str) -> Optional[bytes]:
        """The maintained fingerprint for ``key`` (None when absent)."""
        return self.indexes[self.partition_of(key)].fingerprint(key)

    def snapshot(self) -> MerkleTree:
        """Freeze the whole node's digests into one combined tree."""
        self.flush()
        return MerkleTree(self._combined_fingerprints(),
                          fanout=self.fanout, depth=self.depth)

    def rebuild(self, storage: NodeStorage) -> None:
        """Reconstruct every range's tree from the surviving storage.

        Only vnodes that actually hold keys pay a rebuild (counted per such
        vnode in ``full_rebuilds``); empty ranges are just reset.
        """
        for partition_id in self.indexes:
            self.rebuild_vnode(partition_id, storage)

    def reset(self) -> None:
        """Empty every range's tree (the whole disk was wiped)."""
        for index in self.indexes.values():
            index.reset()

    def audit(self, storage: NodeStorage, sample_size: int = 64,
              rng: Optional[random.Random] = None) -> Dict[str, int]:
        """Cold-verify sampled keys against whichever range's tree holds them.

        Same contract as :meth:`MerkleIndex.audit`; each sampled key is
        checked against its own partition's maintained fingerprint (via
        :meth:`fingerprint`'s routing), so drift localised to one vnode's
        tree is still caught.
        """
        return _run_audit(self, storage, sample_size, rng)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        live = sum(1 for index in self.indexes.values() if index.key_count)
        return (f"VnodeIndexSet(partitions={len(self.indexes)}, "
                f"live={live}, keys={self.key_count})")
