"""Client sessions: the application-side view of the store.

A :class:`ClientSession` models one client of the storage system (a browser
session, an application server worker, ...).  It is responsible for the two
pieces of client-side bookkeeping the protocol needs:

* remembering the **causal context** returned by its last read of each key so
  the next write can supersede what was read (the store never trusts clients
  to do more than echo the context back);
* minting the **ground-truth identity** of each write it issues — a unique
  dot ``(client_id, seq)`` plus the ground-truth causal history of the write —
  which the correctness oracle uses and the mechanisms never see.

Sessions also expose convenience ``get``/``put`` wrappers over a store
object, which is what the examples and workload generators use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..clocks.interface import ReadResult, Sibling, merge_histories
from ..core.causal_history import CausalHistory
from ..core.dot import Dot
from .context import CausalContext


@dataclass
class GetResult:
    """What a client receives from a GET."""

    key: str
    values: List[Any]
    siblings: List[Sibling]
    context: CausalContext

    @property
    def is_conflict(self) -> bool:
        """True when the store returned more than one concurrent value."""
        return len(self.values) > 1

    @property
    def value(self) -> Optional[Any]:
        """The single value, when there is no conflict (None for empty keys)."""
        if len(self.values) == 1:
            return self.values[0]
        if not self.values:
            return None
        raise ValueError(
            f"key {self.key!r} has {len(self.values)} concurrent values; "
            "resolve the conflict or use .values"
        )


@dataclass
class PutResult:
    """What a client receives back from a PUT."""

    key: str
    context: Optional[CausalContext]
    coordinator: str
    sibling: Sibling


class ClientSession:
    """One client of the store, with its per-key causal bookkeeping."""

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        self._write_seq = 0
        self._observed: Dict[str, CausalHistory] = {}
        self._contexts: Dict[str, CausalContext] = {}
        #: Number of get/put operations issued (reports).
        self.stats = {"gets": 0, "puts": 0}

    # ------------------------------------------------------------------ #
    # Causal bookkeeping
    # ------------------------------------------------------------------ #
    def observed_history(self, key: str) -> CausalHistory:
        """Ground-truth history of everything this client has seen of ``key``."""
        return self._observed.get(key, CausalHistory.empty())

    def last_context(self, key: str) -> Optional[CausalContext]:
        """The causal context from the client's most recent read of ``key``."""
        return self._contexts.get(key)

    def absorb_read(self,
                    key: str,
                    read: ReadResult,
                    mechanism_name: str) -> CausalContext:
        """Record the outcome of a read and build the context for the next write.

        The context's ground-truth history covers exactly what *this* read
        returned — the same information the mechanism context encodes — so the
        oracle and the mechanism under test are judged on identical inputs.
        The session separately accumulates everything it has ever seen
        (:meth:`observed_history`), which reports may use but contexts do not.
        """
        seen_now = merge_histories(read.siblings)
        self._observed[key] = self.observed_history(key).merge(seen_now)
        context = CausalContext(
            key=key,
            mechanism_context=read.context,
            observed_history=seen_now,
            mechanism_name=mechanism_name,
        )
        self._contexts[key] = context
        return context

    def prepare_write(self,
                      key: str,
                      value: Any,
                      context: Optional[CausalContext] = None) -> Sibling:
        """Mint the ground-truth identity of a new write of ``key``.

        The write's ground-truth causal history is the history carried by the
        context the write is issued with, plus the write's own fresh dot.
        This matches the correctness criterion of the DVV literature: a PUT
        supersedes exactly the versions covered by the context it supplies —
        a blind write (no context) is causally concurrent with everything,
        even if the client *happened* to have read the key before, because the
        store is never told about those reads.
        """
        self._write_seq += 1
        dot = Dot(self.client_id, self._write_seq)
        base_history = (
            context.observed_history if context is not None else CausalHistory.empty()
        )
        history = CausalHistory(dot, base_history.events())
        return Sibling(value=value, origin_dot=dot, history=history, writer=self.client_id)

    def forget(self, key: str) -> None:
        """Drop the session's context for ``key`` (models an expired session).

        The next write becomes a blind write — one of the behaviours that
        creates siblings in production systems.
        """
        self._contexts.pop(key, None)
        self._observed.pop(key, None)

    def forget_all(self) -> None:
        """Drop every per-key context (fresh session, same client identity)."""
        self._contexts.clear()
        self._observed.clear()

    # ------------------------------------------------------------------ #
    # Convenience wrappers over a store object
    # ------------------------------------------------------------------ #
    def get(self, store: "SupportsClientOps", key: str, server_id: Optional[str] = None) -> GetResult:
        """Read ``key`` through ``store``, updating the session's context."""
        self.stats["gets"] += 1
        return store.get(key, self, server_id=server_id)

    def put(self,
            store: "SupportsClientOps",
            key: str,
            value: Any,
            server_id: Optional[str] = None,
            use_context: bool = True) -> PutResult:
        """Write ``key`` through ``store``.

        ``use_context=False`` issues a deliberate blind write (ignoring any
        context the session holds), used by workloads that model careless
        clients.
        """
        self.stats["puts"] += 1
        context = self._contexts.get(key) if use_context else None
        return store.put(key, value, self, context=context, server_id=server_id)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ClientSession(id={self.client_id!r}, writes={self._write_seq})"


class SupportsClientOps:
    """Structural interface a store must offer to :class:`ClientSession` wrappers.

    Both the synchronous store and the simulated cluster's blocking facade
    implement these two methods; the class exists purely for documentation and
    isinstance-free duck typing.
    """

    def get(self, key: str, client: ClientSession,
            server_id: Optional[str] = None) -> GetResult:  # pragma: no cover - interface
        raise NotImplementedError

    def put(self, key: str, value: Any, client: ClientSession,
            context: Optional[CausalContext] = None,
            server_id: Optional[str] = None) -> PutResult:  # pragma: no cover - interface
        raise NotImplementedError
