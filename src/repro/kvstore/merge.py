"""Application-level sibling resolution strategies.

Causality tracking tells the store which versions are concurrent; deciding
what to *do* with concurrent versions is the application's job.  This module
collects the common resolution strategies the examples and workloads use:

* :class:`LastWriterWins` — pick one sibling deterministically (by the
  ground-truth dot, as a stand-in for a wall-clock timestamp).  Loses data by
  design; included because it is what stores that refuse to expose siblings
  effectively do.
* :class:`UnionMerge` — merge siblings that are collections (sets/lists),
  the classic shopping-cart resolution from the Dynamo paper.
* :class:`CallbackResolver` — delegate to an application-supplied function.

Resolvers consume the sibling list of a GET and return a single merged value;
the caller is responsible for writing the merged value back with the GET's
context so the resolution itself is recorded causally.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence

from ..clocks.interface import Sibling
from ..core.exceptions import ConfigurationError


class SiblingResolver:
    """Base class for sibling resolution strategies."""

    name = "abstract"

    def resolve(self, siblings: Sequence[Sibling]) -> Any:
        """Return the single application value that replaces the sibling set."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__}>"


class LastWriterWins(SiblingResolver):
    """Keep the sibling with the highest (writer, sequence) dot; drop the rest.

    Deterministic and cheap, but silently discards concurrent updates — the
    anti-pattern the paper's storage systems exist to avoid.  Useful in
    experiments as the "how much would LWW lose" yardstick.
    """

    name = "last_writer_wins"

    def resolve(self, siblings: Sequence[Sibling]) -> Any:
        if not siblings:
            raise ConfigurationError("cannot resolve an empty sibling set")
        winner = max(siblings, key=lambda sibling: (sibling.origin_dot.counter,
                                                    sibling.origin_dot.actor))
        return winner.value


class UnionMerge(SiblingResolver):
    """Union of siblings whose values are iterables (sets, lists, tuples).

    The shopping-cart merge: no concurrently-added item is ever lost, though
    concurrently-removed items may resurface (the classic Dynamo anomaly,
    which CRDTs address and which is out of scope here).
    """

    name = "union_merge"

    def resolve(self, siblings: Sequence[Sibling]) -> List[Any]:
        if not siblings:
            raise ConfigurationError("cannot resolve an empty sibling set")
        merged: List[Any] = []
        for sibling in siblings:
            value = sibling.value
            if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
                raise ConfigurationError(
                    f"UnionMerge needs iterable sibling values, got {type(value).__name__}"
                )
            for item in value:
                if item not in merged:
                    merged.append(item)
        return merged


class CallbackResolver(SiblingResolver):
    """Delegate resolution to an application-provided callable."""

    name = "callback"

    def __init__(self, callback: Callable[[Sequence[Sibling]], Any]) -> None:
        self._callback = callback

    def resolve(self, siblings: Sequence[Sibling]) -> Any:
        return self._callback(siblings)


def resolve_and_writeback(store: Any,
                          key: str,
                          client: Any,
                          resolver: SiblingResolver) -> Any:
    """Read ``key``, resolve its siblings, and write the merged value back.

    The write-back carries the read's context, so every sibling that took part
    in the resolution is causally superseded — after replicas converge the key
    has a single value again.  Returns the merged value.
    """
    result = client.get(store, key)
    if not result.siblings:
        return None
    if len(result.siblings) == 1:
        return result.siblings[0].value
    merged = resolver.resolve(result.siblings)
    client.put(store, key, merged)
    return merged
