"""The replicated multi-version key-value store (simulated Dynamo/Riak substrate).

Two store frontends share the same replica-local machinery
(:class:`~repro.kvstore.server.StorageNode` + pluggable causality mechanism):

* :class:`~repro.kvstore.sync_store.SyncReplicatedStore` — synchronous, exact
  control over interleavings; used by the Figure 1 scenario and the
  correctness / metadata experiments.
* :class:`~repro.kvstore.simulated.SimulatedCluster` — message-passing over
  the discrete-event network simulator with quorums, read repair and
  anti-entropy; used by the latency experiment and the integration tests.

The message protocol itself lives in :mod:`repro.kvstore.protocol` as
transport-agnostic state machines; besides the simulator,
:class:`~repro.kvstore.asyncio_cluster.AsyncioCluster` hosts them over real
TCP/Unix-domain sockets for wall-clock benchmarking.
"""

from .anti_entropy import AntiEntropyDaemon, AntiEntropyScheduler, HintedHandoffDaemon
from .asyncio_cluster import AsyncClusterClient, AsyncioCluster, AsyncServerNode
from .client import ClientSession, GetResult, PutResult
from .context import CausalContext
from .merkle import (
    MERKLE_MAINTENANCE_MODES,
    DiffStats,
    MerkleAntiEntropy,
    MerkleTree,
    bucket_path,
    diff_keys,
    key_fingerprint,
    state_fingerprint,
)
from .merkle_index import MerkleIndex, VnodeIndexSet
from .merge import (
    CallbackResolver,
    LastWriterWins,
    SiblingResolver,
    UnionMerge,
    resolve_and_writeback,
)
from .read_repair import ReadRepairStats, RepairPlan, plan_read_repair
from .server import Hint, StorageNode
from .simulated import (
    DEADLINE_MODES,
    REQUEST_MODES,
    MerkleSyncStats,
    MessageServer,
    RequestRecord,
    SimulatedClient,
    SimulatedCluster,
    default_value_size,
)
from .storage import NodeStorage, VnodeManager, VnodeStore
from .sync_store import SyncReplicatedStore
from .write_log import WriteLog, WriteRecord

__all__ = [
    "DEADLINE_MODES",
    "MERKLE_MAINTENANCE_MODES",
    "REQUEST_MODES",
    "AntiEntropyDaemon",
    "AntiEntropyScheduler",
    "AsyncClusterClient",
    "AsyncServerNode",
    "AsyncioCluster",
    "CallbackResolver",
    "CausalContext",
    "ClientSession",
    "DiffStats",
    "GetResult",
    "Hint",
    "HintedHandoffDaemon",
    "LastWriterWins",
    "MerkleAntiEntropy",
    "MerkleIndex",
    "MerkleSyncStats",
    "MerkleTree",
    "MessageServer",
    "NodeStorage",
    "PutResult",
    "ReadRepairStats",
    "RepairPlan",
    "RequestRecord",
    "SiblingResolver",
    "SimulatedClient",
    "SimulatedCluster",
    "StorageNode",
    "SyncReplicatedStore",
    "UnionMerge",
    "VnodeIndexSet",
    "VnodeManager",
    "VnodeStore",
    "WriteLog",
    "WriteRecord",
    "bucket_path",
    "default_value_size",
    "diff_keys",
    "key_fingerprint",
    "plan_read_repair",
    "resolve_and_writeback",
    "state_fingerprint",
]
