"""repro — Dotted Version Vectors for distributed storage systems.

A comprehensive reproduction of *"Brief Announcement: Efficient Causality
Tracking in Distributed Storage Systems With Dotted Version Vectors"*
(Preguica, Baquero, Almeida, Fonte, Goncalves — PODC 2012).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: dots, version vectors,
  dotted version vectors (and dotted version vector sets), causal histories,
  comparison semantics and serialisation.
* :mod:`repro.clocks` — every baseline / related-work mechanism and the
  pluggable :class:`~repro.clocks.interface.CausalityMechanism` interface.
* :mod:`repro.kvstore`, :mod:`repro.cluster`, :mod:`repro.network` — the
  simulated Dynamo/Riak-style replicated store the mechanisms are evaluated
  inside (synchronous and discrete-event message-passing variants).
* :mod:`repro.workloads` — the Figure 1 trace, named scenarios and synthetic
  workload generators.
* :mod:`repro.analysis` — the correctness oracle, metadata accounting and
  latency summaries backing the experiment reports.

Quickstart
----------
>>> from repro.core import Dot, VersionVector, DottedVersionVector
>>> a = DottedVersionVector(Dot("A", 2), VersionVector({"A": 1}))
>>> b = DottedVersionVector(Dot("A", 3), VersionVector({"A": 1}))
>>> a.concurrent_with(b)
True

See ``examples/quickstart.py`` for the storage-system level walkthrough.
"""

from . import analysis, clocks, cluster, core, kvstore, network, workloads
from .core import (
    CausalHistory,
    Dot,
    DottedVersionVector,
    DVVSet,
    Ordering,
    VersionVector,
)

__version__ = "1.0.0"

__all__ = [
    "CausalHistory",
    "DVVSet",
    "Dot",
    "DottedVersionVector",
    "Ordering",
    "VersionVector",
    "__version__",
    "analysis",
    "clocks",
    "cluster",
    "core",
    "kvstore",
    "network",
    "workloads",
]
