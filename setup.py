"""Setuptools entry point.

The pyproject.toml [project] table is the canonical metadata; this shim exists
so that editable installs work on environments whose setuptools predates full
PEP 660 support (no `wheel` package available offline).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Dotted Version Vectors: efficient causality tracking for distributed "
        "storage systems (PODC 2012 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro-dvv=repro.cli:main"]},
)
